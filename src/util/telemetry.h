// Process-wide telemetry: named counters, gauges, latency histograms and
// wall-clock timers, plus trace spans exportable to Chrome's
// chrome://tracing JSON format.
//
// Telemetry is DISABLED by default and every recording path early-outs on
// a single relaxed atomic load, so instrumented hot paths (the tape's
// dense kernels, the thread pool) pay no measurable cost when it is off —
// tier-1 timings are unaffected. Call telemetry::SetEnabled(true) (the
// CLI/bench flags --metrics-out / --trace-out do this) to start
// recording.
//
// Usage:
//
//   static telemetry::Timer* t = telemetry::GetTimer("ag.gemm");
//   telemetry::ScopedTimer timer(t);          // records on destruction
//
//   telemetry::ScopedSpan span("epoch", "train");  // chrome trace slice
//
//   telemetry::GetCounter("train.batches")->Add(1);
//
// All metric objects are created on first use, live for the process
// lifetime (pointers remain valid forever), and are safe to record into
// from any number of threads concurrently. Reset() zeroes every metric
// value (including the "telemetry.dropped_spans" overflow counter),
// clears the buffered trace-span vector, and restarts the trace epoch —
// registrations survive, so back-to-back bench iterations can Reset()
// between runs without leaking spans or counts across them.
//
// Export:
//   WriteMetricsJson(path)  — {"counters":{...},"gauges":{...},
//                              "timers":{...},"histograms":{...}}
//   WriteTraceJson(path)    — {"traceEvents":[...]} ; open in
//                             chrome://tracing or Perfetto.

#ifndef DGNN_UTIL_TELEMETRY_H_
#define DGNN_UTIL_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dgnn::telemetry {

// Global on/off switch. Reads are a single relaxed atomic load.
bool Enabled();
void SetEnabled(bool on);

// Zeroes every metric (counters — "telemetry.dropped_spans" included —
// gauges, timers, histograms), drops all buffered trace events, and
// restarts the trace epoch. Registered metric pointers stay valid.
void Reset();

// Monotonically increasing integer (events, calls, items processed).
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Zero() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins double (loss, learning rate, pool width).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Call count plus accumulated wall-clock nanoseconds; the cheap shape for
// "how many times did this kernel run and how long did it take in total".
class Timer {
 public:
  void RecordNanos(int64_t ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    nanos_.fetch_add(ns, std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  void Zero() {
    count_.store(0, std::memory_order_relaxed);
    nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> nanos_{0};
};

// Latency histogram over a FIXED exponential bucket layout shared by
// every histogram in the process: bucket i counts values (in seconds)
// with v <= 1e-6 * 2^i, for i in [0, kNumBuckets); the last bucket also
// absorbs anything larger (~4295 s). The layout never depends on the data,
// so histograms from different runs are directly mergeable / comparable.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  // A plain copy of the bucket counts (shared fixed layout), mergeable by
  // element-wise addition. `count` always equals the bucket sum, so the
  // accounting identity survives delta arithmetic; `sum_nanos` is read
  // separately and may drift by the few records that land between the
  // bucket reads and the sum read — harmless for rate/mean reporting,
  // never for the count identity.
  struct Counts {
    int64_t buckets[kNumBuckets] = {};
    int64_t count = 0;
    int64_t sum_nanos = 0;
  };

  // Upper bound of bucket i in seconds: 1e-6 * 2^i.
  static double BucketUpperBound(int i);
  // Index of the bucket that counts `seconds` (clamped to the last).
  static int BucketIndex(double seconds);

  void Record(double seconds);

  // Approximate quantile (q in [0, 1], clamped) read off the cumulative
  // bucket counts: the upper bound of the bucket holding the q-th
  // recorded value, clamped into [min_seconds, max_seconds]. Resolution
  // is one power-of-two bucket — adequate for p50/p95/p99 latency
  // reporting (bench_serve_load). 0 when nothing was recorded.
  double ApproxQuantileSeconds(double q) const;

  // Several quantiles in one pass over the buckets (and one consistent
  // read of the counts — concurrent Record calls cannot land between
  // the per-quantile walks the way repeated ApproxQuantileSeconds calls
  // allow). `qs` need not be sorted; result i answers qs[i].
  std::vector<double> ApproxQuantilesSeconds(
      const std::vector<double>& qs) const;

  // Copies the current bucket counts without blocking writers (32 relaxed
  // loads; `count` is recomputed as the bucket sum so the identity holds).
  Counts SnapshotCounts() const;

  // Returns counts recorded since `*cursor` was last updated and advances
  // the cursor to the current snapshot. Writers are never locked out; a
  // record racing the snapshot lands in this delta or the next, never in
  // both and never in neither. A default-constructed Counts cursor yields
  // everything recorded so far.
  Counts SnapshotDelta(Counts* cursor) const;

  // Nearest-rank quantile over a detached Counts (same semantics as
  // ApproxQuantileSeconds minus the min/max clamp, which Counts does not
  // carry). 0 when the counts are empty.
  static double QuantileFromCounts(const Counts& c, double q);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const;
  // Min/max of recorded values; 0 when count() == 0.
  double min_seconds() const;
  double max_seconds() const;
  int64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

  void Zero();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  // Stored as nanosecond integers so concurrent accumulation stays a
  // plain fetch_add (no CAS loop, no float non-determinism).
  std::atomic<int64_t> sum_nanos_{0};
  std::atomic<int64_t> min_nanos_{INT64_MAX};
  std::atomic<int64_t> max_nanos_{INT64_MIN};
};

// Registry lookups: create-on-first-use, stable pointers, thread-safe.
// A name is bound to one metric kind forever; reusing it with a different
// kind CHECK-fails.
Counter* GetCounter(std::string_view name);
Gauge* GetGauge(std::string_view name);
Timer* GetTimer(std::string_view name);
Histogram* GetHistogram(std::string_view name);

// RAII wall-clock timer; no-op (not even a clock read) when telemetry is
// disabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(Enabled() ? timer : nullptr) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      timer_->RecordNanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

// RAII latency recorder: feeds the elapsed wall-clock seconds into a
// Histogram on destruction. No-op when telemetry is disabled at
// construction.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist)
      : hist_(Enabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (hist_ != nullptr) {
      hist_->Record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// RAII trace span ("X" complete event in the Chrome trace format). `name`
// and `category` must be string literals or otherwise outlive the
// process's last trace export. No-op when telemetry is disabled at
// construction. Optionally records the same duration into `timer`.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category,
                      Timer* timer = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  Timer* timer_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

// Number of buffered trace events (capped; see kMaxTraceEvents in the
// .cc — once full, further spans bump the "telemetry.dropped_spans"
// counter instead).
int64_t NumTraceEvents();

// Microseconds since the current trace epoch (restarted by Reset()).
// Matches the ts field of exported chrome://tracing span events, so
// per-request NDJSON trace records stamped with this clock line up with
// spans when both files are loaded side by side.
int64_t TraceNowMicros();

// JSON snapshots. Metrics with zero recorded activity are included (a
// registered counter at 0 is information too); histograms serialize only
// their non-empty buckets.
std::string MetricsJson();
std::string TraceJson();
util::Status WriteMetricsJson(const std::string& path);
util::Status WriteTraceJson(const std::string& path);

}  // namespace dgnn::telemetry

#endif  // DGNN_UTIL_TELEMETRY_H_
