// Minimal --key=value command-line flag parsing for the bench and example
// binaries (no external dependencies).

#ifndef DGNN_UTIL_FLAGS_H_
#define DGNN_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace dgnn::util {

class Flags {
 public:
  // Accepts "--key=value" and bare "--key" (value "true"). Unrecognized
  // positional arguments abort with a usage message.
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dgnn::util

#endif  // DGNN_UTIL_FLAGS_H_
