// Small string helpers shared by the data loaders and bench output code.

#ifndef DGNN_UTIL_STRINGS_H_
#define DGNN_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dgnn::util {

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Strict integer / float parsing; the whole string must be consumed.
StatusOr<int64_t> ParseInt(std::string_view s);
StatusOr<double> ParseDouble(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dgnn::util

#endif  // DGNN_UTIL_STRINGS_H_
