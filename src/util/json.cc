#include "util/json.h"

#include <cmath>

#include "util/strings.h"

namespace dgnn::util {
namespace {

// Protects the recursive parser from stack exhaustion on adversarial
// inputs; run-log payloads nest 3-4 levels deep.
constexpr int kMaxDepth = 64;

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  return StrFormat("%.17g", v);
}

// ---------------------------------------------------------------------------
// JsonObject
// ---------------------------------------------------------------------------

void JsonObject::Key(std::string_view key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":";
}

JsonObject& JsonObject::Set(std::string_view key, std::string_view value) {
  Key(key);
  body_ += '"';
  body_ += JsonEscape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::Set(std::string_view key, const char* value) {
  return Set(key, std::string_view(value));
}

JsonObject& JsonObject::Set(std::string_view key, const std::string& value) {
  return Set(key, std::string_view(value));
}

JsonObject& JsonObject::Set(std::string_view key, int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::Set(std::string_view key, int value) {
  return Set(key, static_cast<int64_t>(value));
}

JsonObject& JsonObject::Set(std::string_view key, double value) {
  Key(key);
  body_ += JsonDouble(value);
  return *this;
}

JsonObject& JsonObject::Set(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::SetRaw(std::string_view key, std::string_view json) {
  Key(key);
  body_ += json;
  return *this;
}

std::string JsonObject::Build() const { return "{" + body_ + "}"; }

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : def;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value : std::string(def);
}

bool JsonValue::BoolOr(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->bool_value : def;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    DGNN_RETURN_IF_ERROR(Value(&v, 0));
    SkipWs();
    if (pos_ != s_.size()) {
      return Err("trailing content after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  int Peek() const {
    return pos_ < s_.size() ? static_cast<unsigned char>(s_[pos_]) : -1;
  }

  Status Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    switch (Peek()) {
      case '{': return Object(out, depth);
      case '[': return Array(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return String(&out->string_value);
      case 't': return Literal("true", out, JsonValue::Kind::kBool, true);
      case 'f': return Literal("false", out, JsonValue::Kind::kBool, false);
      case 'n': return Literal("null", out, JsonValue::Kind::kNull, false);
      case -1: return Err("unexpected end of input");
      default: return Number(out);
    }
  }

  Status Literal(std::string_view word, JsonValue* out, JsonValue::Kind kind,
                 bool b) {
    if (s_.substr(pos_, word.size()) != word) {
      return Err("invalid literal");
    }
    pos_ += word.size();
    out->kind = kind;
    out->bool_value = b;
    return Status::Ok();
  }

  Status Number(JsonValue* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (Peek() >= '0' && Peek() <= '9') ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    auto parsed = ParseDouble(s_.substr(start, pos_ - start));
    if (!parsed.ok()) return Err("invalid number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = parsed.value();
    return Status::Ok();
  }

  Status String(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= s_.size()) return Err("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Err("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("invalid \\u escape");
          }
          // UTF-8 encode (surrogate pairs not recombined; the run log
          // never emits them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Err("invalid escape");
      }
    }
  }

  Status Array(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      JsonValue elem;
      DGNN_RETURN_IF_ERROR(Value(&elem, depth + 1));
      out->array.push_back(std::move(elem));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Err("expected ',' or ']' in array");
    }
  }

  Status Object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      if (Peek() != '"') return Err("expected object key");
      std::string key;
      DGNN_RETURN_IF_ERROR(String(&key));
      SkipWs();
      if (Peek() != ':') return Err("expected ':' after object key");
      ++pos_;
      JsonValue member;
      DGNN_RETURN_IF_ERROR(Value(&member, depth + 1));
      out->object.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Err("expected ',' or '}' in object");
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace dgnn::util
