#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dgnn::util {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

StatusOr<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty float field");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a float: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace dgnn::util
