// Minimal JSON support shared by the observability layer: escaping and
// number formatting (used by telemetry's exporters and the run log's
// event writer), an append-only object builder, and a full recursive-
// descent parser (used by dgnn_inspect and the run-log tests to read
// emitted payloads back with a real parser instead of substring checks).
//
// This is deliberately not a general-purpose JSON library: the builder
// only produces flat key ordering (nesting via SetRaw), and the parser
// materializes everything eagerly — both are sized for machine-generated
// telemetry/run-log payloads, not arbitrary user input. No external
// dependencies.

#ifndef DGNN_UTIL_JSON_H_
#define DGNN_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dgnn::util {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// added). Control characters become \u00XX.
std::string JsonEscape(std::string_view s);

// Formats a double so it round-trips exactly (%.17g). NaN/Inf — which
// JSON cannot represent — serialize as 0.
std::string JsonDouble(double v);

// Append-only JSON object builder:
//
//   JsonObject o;
//   o.Set("model", "DGNN").Set("epoch", 3).Set("loss", 0.693);
//   o.Build();  // {"model":"DGNN","epoch":3,"loss":0.693}
//
// Keys are written in insertion order and are not deduplicated; nested
// objects/arrays go through SetRaw with an already-serialized value.
class JsonObject {
 public:
  JsonObject& Set(std::string_view key, std::string_view value);
  JsonObject& Set(std::string_view key, const char* value);
  JsonObject& Set(std::string_view key, const std::string& value);
  JsonObject& Set(std::string_view key, int64_t value);
  JsonObject& Set(std::string_view key, int value);
  JsonObject& Set(std::string_view key, double value);
  JsonObject& Set(std::string_view key, bool value);
  // `json` must already be a valid JSON value (object, array, number...).
  JsonObject& SetRaw(std::string_view key, std::string_view json);

  bool empty() const { return body_.empty(); }
  // "{...}".
  std::string Build() const;

 private:
  void Key(std::string_view key);
  std::string body_;
};

// Parsed JSON value. Exactly one of the containers is meaningful,
// selected by `kind`; numbers are stored as double (adequate for the
// run-log schema, whose integers stay well under 2^53).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  // Insertion order preserved; duplicate keys keep both entries (Find
  // returns the first).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Convenience accessors for object members with defaults.
  double NumberOr(std::string_view key, double def) const;
  std::string StringOr(std::string_view key, std::string_view def) const;
  bool BoolOr(std::string_view key, bool def) const;
};

// Parses exactly one JSON value spanning the whole input (surrounding
// whitespace allowed). Rejects trailing content, unterminated literals,
// and nesting deeper than an internal limit. \uXXXX escapes decode to
// UTF-8.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace dgnn::util

#endif  // DGNN_UTIL_JSON_H_
