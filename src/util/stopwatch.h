// Wall-clock stopwatch used by the trainer and the runtime benches.

#ifndef DGNN_UTIL_STOPWATCH_H_
#define DGNN_UTIL_STOPWATCH_H_

#include <chrono>

namespace dgnn::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dgnn::util

#endif  // DGNN_UTIL_STOPWATCH_H_
