// Status / StatusOr: exception-free error propagation for fallible paths.
//
// The project follows the Google style guide's "no exceptions" rule. Any
// operation whose failure is a legitimate runtime outcome (loading a dataset
// file, parsing a TSV row) returns Status or StatusOr<T>. Invariant
// violations use DGNN_CHECK instead (util/check.h).

#ifndef DGNN_UTIL_STATUS_H_
#define DGNN_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace dgnn::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  // A deadline expired before the operation finished. Distinct from
  // kInternal so retry policies can tell "transient, try again" from
  // "out of time" (retrying after the deadline only adds load).
  kDeadlineExceeded = 6,
};

// Name of the code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value or an error Status. `value()` CHECK-fails on error;
// callers must test `ok()` first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DGNN_CHECK(!status_.ok()) << "StatusOr constructed from OK status "
                                 "without a value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DGNN_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    DGNN_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    DGNN_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace dgnn::util

// Propagates a non-OK status to the caller.
#define DGNN_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::dgnn::util::Status _status = (expr);        \
    if (!_status.ok()) return _status;            \
  } while (false)

#endif  // DGNN_UTIL_STATUS_H_
