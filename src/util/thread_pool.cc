#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "util/check.h"
#include "util/telemetry.h"

namespace dgnn::util {
namespace {

// Set while a thread executes chunks of some region; nested ParallelFor
// calls see it and degrade to serial chunk execution instead of trying to
// re-enter the pool (which would deadlock the region they are part of).
thread_local bool tls_in_parallel_region = false;

// Pool telemetry. Counted per region (not per chunk) so the disabled-path
// cost on the hot submit path is one relaxed load.
struct PoolMetrics {
  telemetry::Counter* regions = telemetry::GetCounter("threadpool.regions");
  telemetry::Counter* chunks = telemetry::GetCounter("threadpool.chunks_run");
  // Regions that could have gone parallel but fell back to serial because
  // another thread already held the pool (submit contention) — the pool's
  // "queue stall" signal.
  telemetry::Counter* stalls =
      telemetry::GetCounter("threadpool.submit_stalls");
  // Regions executed serially inside an already-parallel region.
  telemetry::Counter* nested =
      telemetry::GetCounter("threadpool.nested_serial");
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  DGNN_CHECK_GT(grain, 0);
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

// Shared state of one ParallelFor region. Held by shared_ptr so a worker
// that wakes late (or re-checks the chunk counter after the last chunk
// finished) never touches freed memory even though the submitting caller
// has already returned.
struct ThreadPool::Region {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  void (*fn)(void*, int64_t, int64_t) = nullptr;
  void* ctx = nullptr;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done_chunks{0};
  std::mutex mu;  // guards error and the done_cv wait/notify handshake
  std::condition_variable done_cv;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  DGNN_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int t = 0; t < num_threads - 1; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || (region_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      region = region_;
    }
    RunChunks(*region);
  }
}

void ThreadPool::RunChunks(Region& region) {
  tls_in_parallel_region = true;
  for (;;) {
    const int64_t c = region.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= region.num_chunks) break;
    const int64_t chunk_begin = region.begin + c * region.grain;
    const int64_t chunk_end = std::min(region.end, chunk_begin + region.grain);
    try {
      region.fn(region.ctx, chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.mu);
      if (!region.error) region.error = std::current_exception();
    }
    if (region.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region.num_chunks) {
      std::lock_guard<std::mutex> lock(region.mu);
      region.done_cv.notify_all();
    }
  }
  tls_in_parallel_region = false;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             void (*fn)(void*, int64_t, int64_t), void* ctx) {
  const int64_t num_chunks = NumChunks(begin, end, grain);
  if (num_chunks == 0) return;
  const bool telemetry_on = telemetry::Enabled();
  if (telemetry_on) {
    PoolMetrics& m = GetPoolMetrics();
    m.regions->Add(1);
    m.chunks->Add(num_chunks);
    if (tls_in_parallel_region) m.nested->Add(1);
  }
  const bool can_go_parallel =
      num_threads_ > 1 && num_chunks > 1 && !tls_in_parallel_region;
  if (can_go_parallel && submit_mu_.try_lock()) {
    std::lock_guard<std::mutex> submit(submit_mu_, std::adopt_lock);
    auto region = std::make_shared<Region>();
    region->begin = begin;
    region->end = end;
    region->grain = grain;
    region->num_chunks = num_chunks;
    region->fn = fn;
    region->ctx = ctx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      region_ = region;
      ++generation_;
    }
    start_cv_.notify_all();
    RunChunks(*region);  // the caller is a full work lane
    {
      std::unique_lock<std::mutex> lock(region->mu);
      region->done_cv.wait(lock, [&] {
        return region->done_chunks.load(std::memory_order_acquire) ==
               region->num_chunks;
      });
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      region_.reset();
    }
    if (region->error) std::rethrow_exception(region->error);
    return;
  }
  // Serial execution on the caller: same chunk boundaries, in chunk order.
  // Covers num_threads == 1, nested calls, single-chunk ranges, and a pool
  // already busy with a region submitted by another thread.
  if (telemetry_on && can_go_parallel) {
    GetPoolMetrics().stalls->Add(1);  // lost the submit race
  }
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t chunk_begin = begin + c * grain;
    const int64_t chunk_end = std::min(end, chunk_begin + grain);
    fn(ctx, chunk_begin, chunk_end);
  }
}

namespace {

int DefaultNumThreads() {
  if (const char* env = std::getenv("DGNN_NUM_THREADS")) {
    char* parse_end = nullptr;
    const long v = std::strtol(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && v > 0 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_pool_mu;
int g_num_threads = 0;  // 0 = not yet resolved
std::shared_ptr<ThreadPool> g_pool;

std::shared_ptr<ThreadPool> GetPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_num_threads == 0) g_num_threads = DefaultNumThreads();
  if (!g_pool) g_pool = std::make_shared<ThreadPool>(g_num_threads);
  return g_pool;
}

}  // namespace

void SetNumThreads(int num_threads) {
  DGNN_CHECK_GT(num_threads, 0);
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (num_threads == g_num_threads && g_pool) return;
  g_num_threads = num_threads;
  // Rebuilt lazily; in-flight users keep the old pool alive via shared_ptr.
  g_pool.reset();
}

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_num_threads == 0) g_num_threads = DefaultNumThreads();
  return g_num_threads;
}

namespace internal {

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     void (*fn)(void*, int64_t, int64_t), void* ctx) {
  GetPool()->ParallelFor(begin, end, grain, fn, ctx);
}

}  // namespace internal

}  // namespace dgnn::util
