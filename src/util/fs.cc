#include "util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/failpoint.h"

namespace dgnn::fs {
namespace {

using util::Status;
using util::StatusOr;

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for " + path + ": " +
                          std::strerror(errno));
}

// open(2) retrying EINTR; -1 with errno set on failure.
int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

Status CloseRetry(int fd, const std::string& path) {
  // POSIX leaves the fd state unspecified after EINTR from close; Linux
  // guarantees the fd is released, so retrying would double-close. Treat
  // EINTR as success, everything else as an error.
  if (::close(fd) != 0 && errno != EINTR) return Errno("close", path);
  return Status::Ok();
}

Status FsyncFd(int fd, const std::string& path) {
  DGNN_FAILPOINT("fs.fsync");
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("fsync", path);
  return Status::Ok();
}

// fsync the directory containing `path` so a completed rename survives a
// crash. Directories opened read-only; failure is a real error (the
// rename is not durable without it).
Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open directory", dir);
  Status synced = FsyncFd(fd, dir);
  Status closed = CloseRetry(fd, dir);
  if (!synced.ok()) return synced;
  return closed;
}

StatusOr<std::string> ReadFileOnce(const std::string& path) {
  DGNN_FAILPOINT("fs.read");
  const int fd = OpenRetry(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("cannot open: " + path);
    return Errno("open", path);
  }
  std::string out;
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted: retry the read
      Status err = Errno("read", path);
      (void)CloseRetry(fd, path);
      return err;
    }
    if (n == 0) break;  // EOF; short reads just loop again
    out.append(buf, static_cast<size_t>(n));
  }
  DGNN_RETURN_IF_ERROR(CloseRetry(fd, path));
  return out;
}

Status WriteFileOnce(const std::string& path, std::string_view bytes) {
  const std::string tmp_path = path + ".tmp";
  DGNN_FAILPOINT("fs.open");
  const int fd = OpenRetry(tmp_path.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (errno == ENOENT) {
      // Parent directory missing: deterministic, not transient.
      return Status::NotFound("cannot open for writing: " + tmp_path);
    }
    return Errno("open", tmp_path);
  }
  auto fail = [&](Status status) {
    (void)CloseRetry(fd, tmp_path);
    std::remove(tmp_path.c_str());
    return status;
  };
  // Full-write loop: EINTR restarts the call, short writes advance the
  // cursor and continue.
  size_t written = 0;
  while (written < bytes.size()) {
    if (failpoint::Enabled()) {
      Status fp = failpoint::Check("fs.write");
      if (!fp.ok()) return fail(fp);
    }
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Errno("write", tmp_path));
    }
    written += static_cast<size_t>(n);
    if (bytes.empty()) break;
  }
  if (bytes.empty() && failpoint::Enabled()) {
    Status fp = failpoint::Check("fs.write");
    if (!fp.ok()) return fail(fp);
  }
  // fsync the file BEFORE rename: once the new name is visible it must
  // point at complete data, or a crash between rename and writeback
  // could expose a garbage file under the final name.
  {
    Status synced = FsyncFd(fd, tmp_path);
    if (!synced.ok()) return fail(synced);
  }
  {
    Status closed = CloseRetry(fd, tmp_path);
    if (!closed.ok()) {
      std::remove(tmp_path.c_str());
      return closed;
    }
  }
  if (failpoint::Enabled()) {
    Status fp = failpoint::Check("fs.rename");
    if (!fp.ok()) {
      std::remove(tmp_path.c_str());
      return fp;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status err = Errno("rename", tmp_path + " -> " + path);
    std::remove(tmp_path.c_str());
    return err;
  }
  // And fsync the parent directory so the rename itself is durable.
  return FsyncParentDir(path);
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  StatusOr<std::string> result{std::string()};
  Status st = failpoint::RetryWithBackoff(
      "read", failpoint::RetryOptions{}, [&]() -> Status {
        auto attempt = ReadFileOnce(path);
        if (!attempt.ok()) return attempt.status();
        result = std::move(attempt).value();
        return Status::Ok();
      });
  if (!st.ok()) return st;
  return result;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  return failpoint::RetryWithBackoff(
      "atomic write", failpoint::RetryOptions{},
      [&] { return WriteFileOnce(path, bytes); });
}

// ---------------------------------------------------------------------------
// AppendWriter
// ---------------------------------------------------------------------------

namespace {
// Flush threshold: large enough that TSV row appends amortize to one
// write(2) per quarter megabyte, small enough to keep the writer's
// resident footprint negligible next to the data it streams.
constexpr size_t kAppendBufferBytes = 256 * 1024;
}  // namespace

Status AppendWriter::Fail(Status status) {
  error_ = status;
  if (fd_ >= 0) {
    (void)CloseRetry(fd_, tmp_path_);
    fd_ = -1;
  }
  if (!tmp_path_.empty()) std::remove(tmp_path_.c_str());
  return error_;
}

Status AppendWriter::Open(const std::string& path) {
  if (!error_.ok()) return error_;
  DGNN_CHECK(fd_ < 0) << "AppendWriter::Open called twice";
  path_ = path;
  tmp_path_ = path + ".tmp";
  DGNN_FAILPOINT("fs.open");
  fd_ = OpenRetry(tmp_path_.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    if (errno == ENOENT) {
      return Fail(
          Status::NotFound("cannot open for writing: " + tmp_path_));
    }
    return Fail(Errno("open", tmp_path_));
  }
  buffer_.reserve(kAppendBufferBytes);
  return Status::Ok();
}

Status AppendWriter::FlushBuffer() {
  size_t written = 0;
  while (written < buffer_.size()) {
    if (failpoint::Enabled()) {
      Status fp = failpoint::Check("fs.write");
      if (!fp.ok()) return Fail(fp);
    }
    const ssize_t n =
        ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Fail(Errno("write", tmp_path_));
    }
    written += static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::Ok();
}

Status AppendWriter::Append(std::string_view bytes) {
  if (!error_.ok()) return error_;
  DGNN_CHECK_GE(fd_, 0) << "AppendWriter::Append before Open";
  buffer_.append(bytes.data(), bytes.size());
  bytes_written_ += static_cast<int64_t>(bytes.size());
  if (buffer_.size() >= kAppendBufferBytes) return FlushBuffer();
  return Status::Ok();
}

Status AppendWriter::Close() {
  if (!error_.ok()) return error_;
  DGNN_CHECK_GE(fd_, 0) << "AppendWriter::Close before Open";
  DGNN_RETURN_IF_ERROR(FlushBuffer());
  {
    Status synced = FsyncFd(fd_, tmp_path_);
    if (!synced.ok()) return Fail(synced);
  }
  {
    Status closed = CloseRetry(fd_, tmp_path_);
    fd_ = -1;
    if (!closed.ok()) {
      std::remove(tmp_path_.c_str());
      error_ = closed;
      return closed;
    }
  }
  if (failpoint::Enabled()) {
    Status fp = failpoint::Check("fs.rename");
    if (!fp.ok()) return Fail(fp);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return Fail(Errno("rename", tmp_path_ + " -> " + path_));
  }
  tmp_path_.clear();  // renamed away: nothing left to abandon
  return FsyncParentDir(path_);
}

void AppendWriter::Abandon() {
  if (fd_ >= 0) {
    (void)CloseRetry(fd_, tmp_path_);
    fd_ = -1;
  }
  if (!tmp_path_.empty()) {
    std::remove(tmp_path_.c_str());
    tmp_path_.clear();
  }
}

}  // namespace dgnn::fs
