#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/strings.h"

namespace dgnn::failpoint {
namespace {

using util::Status;

enum class Action { kError, kOnce, kAbort, kDelay, kOneIn };

struct Site {
  Action action = Action::kError;
  int64_t delay_ms = 0;
  int64_t one_in = 0;
  int64_t hits = 0;
  int64_t triggers = 0;
  bool fired = false;  // `once` latch
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
  uint64_t seed = 0;
};

// Set iff the registry holds at least one site; the fast-path gate.
std::atomic<bool> g_enabled{false};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // never destroyed (atexit-safe)
  return *r;
}

// splitmix64 over a mixed (seed, site, hit-index) key: the 1in<n>
// decision for hit i is a pure function of those three, so it cannot
// depend on thread interleaving.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSiteName(const std::string& name) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

Status ParseAction(const std::string& spec, Site* out) {
  if (spec == "error") {
    out->action = Action::kError;
    return Status::Ok();
  }
  if (spec == "once") {
    out->action = Action::kOnce;
    return Status::Ok();
  }
  if (spec == "abort") {
    out->action = Action::kAbort;
    return Status::Ok();
  }
  if (spec.rfind("delay:", 0) == 0) {
    auto ms = util::ParseInt(spec.substr(6));
    if (!ms.ok() || ms.value() < 0) {
      return Status::InvalidArgument("bad delay in failpoint action '" +
                                     spec + "'");
    }
    out->action = Action::kDelay;
    out->delay_ms = ms.value();
    return Status::Ok();
  }
  if (spec.rfind("1in", 0) == 0) {
    auto n = util::ParseInt(spec.substr(3));
    if (!n.ok() || n.value() <= 0) {
      return Status::InvalidArgument("bad denominator in failpoint action '" +
                                     spec + "'");
    }
    out->action = Action::kOneIn;
    out->one_in = n.value();
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown failpoint action '" + spec + "'");
}

// Parses the environment configuration once, before main runs (no
// failpoint site is evaluated during static initialization in this
// codebase). Keeping env parsing out of Enabled() preserves the
// one-relaxed-load disabled-path contract.
struct EnvInit {
  EnvInit() {
    if (const char* seed = std::getenv("DGNN_FAILPOINT_SEED")) {
      SetSeed(static_cast<uint64_t>(std::strtoull(seed, nullptr, 10)));
    }
    if (const char* spec = std::getenv("DGNN_FAILPOINTS")) {
      Status s = Configure(spec);
      if (!s.ok()) {
        std::fprintf(stderr, "DGNN_FAILPOINTS: %s\n", s.ToString().c_str());
        std::abort();  // a typo'd injection spec must not silently no-op
      }
    }
  }
};
EnvInit g_env_init;

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

Status Configure(const std::string& spec) {
  std::map<std::string, Site> parsed;
  for (const std::string& clause : util::Split(spec, ',')) {
    const std::string trimmed{util::Trim(clause)};
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint clause '" + trimmed +
                                     "' (want site=action)");
    }
    Site site;
    DGNN_RETURN_IF_ERROR(ParseAction(trimmed.substr(eq + 1), &site));
    parsed[trimmed.substr(0, eq)] = site;
  }
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites = std::move(parsed);
  g_enabled.store(!r.sites.empty(), std::memory_order_relaxed);
  return Status::Ok();
}

void Clear() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  g_enabled.store(false, std::memory_order_relaxed);
}

void SetSeed(uint64_t seed) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.seed = seed;
}

Status Check(const char* site) {
  if (!Enabled()) return Status::Ok();
  Registry& r = GetRegistry();
  int64_t delay_ms = -1;
  bool do_abort = false;
  bool inject = false;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return Status::Ok();
    Site& s = it->second;
    const int64_t hit = s.hits++;
    switch (s.action) {
      case Action::kError:
        inject = true;
        break;
      case Action::kOnce:
        if (!s.fired) {
          s.fired = true;
          inject = true;
        }
        break;
      case Action::kAbort:
        do_abort = true;
        break;
      case Action::kDelay:
        delay_ms = s.delay_ms;
        break;
      case Action::kOneIn:
        inject = Mix(r.seed ^ HashSiteName(it->first) ^
                     static_cast<uint64_t>(hit)) %
                     static_cast<uint64_t>(s.one_in) ==
                 0;
        break;
    }
    if (inject || do_abort || delay_ms >= 0) ++s.triggers;
  }
  if (do_abort) {
    std::fprintf(stderr, "failpoint '%s': injected abort\n", site);
    std::abort();
  }
  if (delay_ms >= 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return Status::Ok();
  }
  if (inject) {
    return Status::Internal(std::string("failpoint '") + site +
                            "' injected error");
  }
  return Status::Ok();
}

int64_t HitCount(const std::string& site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

int64_t TriggerCount(const std::string& site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.triggers;
}

Status RetryWithBackoff(const char* what, const RetryOptions& options,
                        const std::function<util::Status()>& fn) {
  DGNN_CHECK_GE(options.max_attempts, 1);
  double backoff_ms = static_cast<double>(options.initial_backoff_ms);
  Status last = Status::Ok();
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    last = fn();
    if (last.ok() || last.code() != util::StatusCode::kInternal) return last;
    if (attempt == options.max_attempts) break;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(backoff_ms, static_cast<double>(options.max_backoff_ms))));
    backoff_ms *= options.multiplier;
  }
  return Status::Internal(std::string(what) + ": " +
                          std::to_string(options.max_attempts) +
                          " attempts exhausted; last error: " +
                          last.ToString());
}

}  // namespace dgnn::failpoint
