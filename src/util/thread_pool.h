// Fixed-size worker thread pool behind the library's ParallelFor
// primitive. Every parallelized hot path (SpMM message passing, dense
// transforms, BPR batch gradients, evaluation, top-K serving scans) is
// expressed as ParallelFor over an index range.
//
// Determinism contract: the range [begin, end) is split into chunks of
// exactly `grain` indices (the last chunk may be shorter). Chunk
// boundaries depend only on (begin, end, grain) — never on the thread
// count or on scheduling — so a kernel whose chunks write disjoint
// outputs (or whose per-chunk partials are merged in chunk-index order)
// produces bit-identical results for any number of threads. With
// num_threads == 1 the chunks run in order on the calling thread with no
// worker handoff at all.

#ifndef DGNN_UTIL_THREAD_POOL_H_
#define DGNN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dgnn::util {

// Number of chunks ParallelFor will create for the given range; chunk c
// covers [begin + c * grain, min(end, begin + (c + 1) * grain)).
int64_t NumChunks(int64_t begin, int64_t end, int64_t grain);

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the thread calling ParallelFor is the
  // num_threads-th lane. num_threads == 1 spawns no workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(chunk_begin, chunk_end) for every chunk of [begin, end).
  // Blocks until all chunks completed. The first exception thrown by any
  // chunk is rethrown on the calling thread after the region drains.
  // Calls from inside a running chunk (nested parallelism) and calls
  // arriving while another region is active run serially on the caller —
  // same chunk boundaries, no deadlock.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   void (*fn)(void*, int64_t, int64_t), void* ctx);

 private:
  struct Region;

  void WorkerLoop();
  static void RunChunks(Region& region);

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::shared_ptr<Region> region_;  // non-null while a region is active
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  // Serializes region submission; contenders fall back to serial.
  std::mutex submit_mu_;
  std::vector<std::thread> workers_;
};

// Process-wide thread-count knob. The first use reads DGNN_NUM_THREADS
// (falling back to std::thread::hardware_concurrency()); SetNumThreads
// overrides it and rebuilds the shared pool lazily. Not meant to be
// called concurrently with in-flight ParallelFor work.
void SetNumThreads(int num_threads);
int NumThreads();

namespace internal {
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     void (*fn)(void*, int64_t, int64_t), void* ctx);
}  // namespace internal

// ParallelFor over the process-wide pool. fn is any callable taking
// (int64_t chunk_begin, int64_t chunk_end).
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  using Decayed = std::decay_t<Fn>;
  Decayed local(std::forward<Fn>(fn));
  internal::ParallelForImpl(
      begin, end, grain,
      [](void* ctx, int64_t b, int64_t e) { (*static_cast<Decayed*>(ctx))(b, e); },
      &local);
}

}  // namespace dgnn::util

#endif  // DGNN_UTIL_THREAD_POOL_H_
