// Deterministic fault injection for failure testing.
//
// A failpoint is a named site compiled into production code at an I/O or
// failure boundary (dataset load, checkpoint save/load, snapshot
// write/read, run-log append, serving execute). Sites are inert by
// default: the only cost on the disabled path is ONE relaxed atomic load
// (the DGNN_FAILPOINT macro guards on Enabled() before anything else), so
// they can stay in hot-ish paths permanently — the same contract as
// telemetry::Enabled() and runlog::Active().
//
// Activation, from the environment or programmatically:
//
//   DGNN_FAILPOINTS="site=action[,site=action...]"   (read before main)
//   failpoint::Configure("site=action,...")           (tests)
//
// Actions:
//   error        every hit injects util::Status::Internal — the shape of
//                a transient I/O failure (callers with RetryWithBackoff
//                will retry it and, since it never stops, exhaust)
//   once         inject `error` on the FIRST hit only; later hits pass.
//                The canonical transient fault: one retry recovers.
//   abort        std::abort() on hit — a simulated hard crash for
//                kill-point testing (the process dies exactly at the
//                site, like SIGKILL but placeable)
//   delay:<ms>   sleep for <ms> milliseconds, then pass — latency
//                injection for overload/timeout testing
//   1in<n>       inject `error` on roughly 1/n of hits. Deterministic:
//                the decision for hit number i depends only on
//                (seed, site name, i), never on threads or timing, so a
//                run with the same seed triggers the same TOTAL number of
//                failures at any thread count. Seed via SetSeed (the
//                CLI's --seed does this) or DGNN_FAILPOINT_SEED.
//
// Sites are plain strings; hitting a site that was never configured is a
// no-op. HitCount/TriggerCount expose per-site counters for tests.
//
// The companion RetryWithBackoff helper is the sanctioned response to the
// transient-error action: capped exponential backoff, retrying only
// kInternal (transient) statuses — corruption (kInvalidArgument etc.)
// fails immediately.

#ifndef DGNN_UTIL_FAILPOINT_H_
#define DGNN_UTIL_FAILPOINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/status.h"

namespace dgnn::failpoint {

// True when at least one site is configured; a single relaxed atomic
// load. Guard every Check call with this so disabled builds pay nothing.
bool Enabled();

// Replaces the active configuration with the parsed spec
// "site=action[,site=action...]". An empty spec clears everything.
// Returns InvalidArgument (and leaves the previous configuration in
// place) when any clause fails to parse.
util::Status Configure(const std::string& spec);

// Removes every configured site and resets all counters.
void Clear();

// Seed for the 1in<n> action; defaults to DGNN_FAILPOINT_SEED or 0.
// Setting the seed does not reset hit counters.
void SetSeed(uint64_t seed);

// Evaluates `site` against the active configuration: may sleep (delay),
// abort the process (abort), or return a non-OK status to inject
// (error / once / 1in<n>). Unconfigured sites return OK. Thread-safe;
// prefer the DGNN_FAILPOINT macro, which skips the call entirely when
// no failpoints are active.
util::Status Check(const char* site);

// Times `site` was evaluated / times it injected a failure (or slept,
// for delay). Zero for unconfigured sites.
int64_t HitCount(const std::string& site);
int64_t TriggerCount(const std::string& site);

struct RetryOptions {
  int max_attempts = 3;
  int initial_backoff_ms = 1;
  int max_backoff_ms = 50;
  double multiplier = 2.0;
};

// Runs `fn` up to max_attempts times, sleeping a capped exponential
// backoff between attempts. Only kInternal statuses are retried — that
// code means "transient environment failure" in this codebase (and is
// what the failpoint error actions inject); any other code is a
// deterministic failure (corruption, bad input) and is returned
// immediately. `what` names the operation in the exhausted-retries
// message.
util::Status RetryWithBackoff(const char* what, const RetryOptions& options,
                              const std::function<util::Status()>& fn);

}  // namespace dgnn::failpoint

// Evaluates a failpoint site and propagates an injected error to the
// caller (works in functions returning Status or StatusOr<T>). Disabled
// path: one relaxed atomic load.
#define DGNN_FAILPOINT(site)                                             \
  do {                                                                   \
    if (::dgnn::failpoint::Enabled()) {                                  \
      ::dgnn::util::Status _fp_status = ::dgnn::failpoint::Check(site);  \
      if (!_fp_status.ok()) return _fp_status;                           \
    }                                                                    \
  } while (false)

#endif  // DGNN_UTIL_FAILPOINT_H_
