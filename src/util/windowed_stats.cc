#include "util/windowed_stats.h"

#include <algorithm>

#include "util/check.h"

namespace dgnn::telemetry {

WindowedStats::WindowedStats(const Config& config) : config_(config) {
  DGNN_CHECK_GT(config_.capacity, 0);
  ring_.resize(static_cast<size_t>(config_.capacity));
}

void WindowedStats::Push(Sample sample) {
  sample.p99_violation = false;
  sample.availability_violation = false;
  if (sample.requests > 0) {
    if (config_.slo_p99_ms > 0.0) {
      const double p99_ms =
          Histogram::QuantileFromCounts(sample.latency, 0.99) * 1e3;
      sample.p99_violation = p99_ms > config_.slo_p99_ms;
    }
    if (config_.slo_availability > 0.0) {
      const double availability = static_cast<double>(sample.ok) /
                                  static_cast<double>(sample.requests);
      sample.availability_violation = availability < config_.slo_availability;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ < config_.capacity) {
    ring_[static_cast<size_t>((head_ + size_) % config_.capacity)] = sample;
    ++size_;
  } else {
    ring_[static_cast<size_t>(head_)] = sample;
    head_ = (head_ + 1) % config_.capacity;
  }
  ++total_ticks_;
  if (sample.p99_violation) ++total_p99_violations_;
  if (sample.availability_violation) ++total_availability_violations_;
}

WindowedStats::WindowAggregate WindowedStats::Aggregate(int ticks) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int n = ticks <= 0 ? size_ : std::min(ticks, size_);
  WindowAggregate agg;
  if (n == 0) return agg;
  agg.ticks = n;
  Histogram::Counts latency;
  for (int i = size_ - n; i < size_; ++i) {
    const Sample& s = ring_[static_cast<size_t>((head_ + i) % config_.capacity)];
    agg.seconds += s.seconds;
    agg.requests += s.requests;
    agg.ok += s.ok;
    agg.shed += s.shed;
    agg.expired += s.expired;
    agg.failed += s.failed;
    agg.degraded += s.degraded;
    agg.swaps += s.swaps;
    agg.cache_hits += s.cache_hits;
    agg.cache_misses += s.cache_misses;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      latency.buckets[b] += s.latency.buckets[b];
    }
    latency.count += s.latency.count;
    latency.sum_nanos += s.latency.sum_nanos;
    if (s.p99_violation) ++agg.p99_violations;
    if (s.availability_violation) ++agg.availability_violations;
  }
  const Sample& newest =
      ring_[static_cast<size_t>((head_ + size_ - 1) % config_.capacity)];
  agg.queue_depth = newest.queue_depth;
  if (agg.seconds > 0.0) {
    agg.qps = static_cast<double>(agg.requests) / agg.seconds;
  }
  if (agg.requests > 0) {
    agg.availability =
        static_cast<double>(agg.ok) / static_cast<double>(agg.requests);
  }
  const int64_t lookups = agg.cache_hits + agg.cache_misses;
  if (lookups > 0) {
    agg.cache_hit_rate =
        static_cast<double>(agg.cache_hits) / static_cast<double>(lookups);
  }
  if (latency.count > 0) {
    agg.p50_ms = Histogram::QuantileFromCounts(latency, 0.50) * 1e3;
    agg.p95_ms = Histogram::QuantileFromCounts(latency, 0.95) * 1e3;
    agg.p99_ms = Histogram::QuantileFromCounts(latency, 0.99) * 1e3;
    agg.mean_ms = static_cast<double>(latency.sum_nanos) /
                  static_cast<double>(latency.count) * 1e-6;
  }
  return agg;
}

int64_t WindowedStats::total_ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ticks_;
}

int64_t WindowedStats::total_p99_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_p99_violations_;
}

int64_t WindowedStats::total_availability_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_availability_violations_;
}

}  // namespace dgnn::telemetry
