// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (data synthesis, parameter
// initialization, negative sampling, dropout) draws from an explicitly
// seeded Rng so experiments are reproducible run-to-run. The generator is
// xoshiro256**, seeded through splitmix64 as its authors recommend.

#ifndef DGNN_UTIL_RNG_H_
#define DGNN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dgnn::util {

// Complete serializable generator state: the xoshiro256** words plus the
// Box-Muller spare. Capturing and restoring this reproduces the exact
// draw sequence — the foundation of checkpoint/resume determinism.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_spare_gaussian = false;
  double spare_gaussian = 0.0;
};

// Fixed-width little-endian binary encoding of RngState (4x uint64 +
// uint8 + double = 41 bytes), used inside checkpoint blobs. Append writes
// at the end of `out`; Parse reads at `*pos` and advances it, returning
// InvalidArgument on a short buffer.
void AppendRngState(const RngState& state, std::string* out);
Status ParseRngState(std::string_view bytes, size_t* pos, RngState* out);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextUint64();

  // Uniform over [0, n). n must be > 0.
  int64_t UniformInt(int64_t n);

  // Uniform over [0, 1).
  double UniformDouble();

  // Uniform over [lo, hi).
  double UniformDouble(double lo, double hi);
  float UniformFloat(float lo, float hi);

  // Standard normal via Box-Muller.
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      using std::swap;
      swap(v[i], v[static_cast<size_t>(j)]);
    }
  }

  // k distinct values from [0, n). Requires k <= n. O(k) expected time for
  // sparse draws, O(n) fallback when k is a large fraction of n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // Index drawn proportionally to non-negative weights (at least one > 0).
  int64_t Categorical(const std::vector<double>& weights);

  // A new Rng whose stream is decorrelated from this one; use to hand
  // independent streams to sub-components.
  Rng Fork();

  // Snapshot / restore the full generator state (see RngState).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace dgnn::util

#endif  // DGNN_UTIL_RNG_H_
