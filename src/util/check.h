// Lightweight CHECK macros for internal invariants.
//
// Per the project's error-handling convention (Google style, no exceptions):
// CHECK-family macros are for programmer errors and broken invariants that
// make continuing meaningless; they print a message and abort. Fallible
// operations whose failure is an expected runtime outcome (file I/O, parsing
// user input) return util::Status instead — see util/status.h.

#ifndef DGNN_UTIL_CHECK_H_
#define DGNN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dgnn::util {
namespace internal_check {

// Terminates the process after printing `expr` and the streamed message.
// Kept out-of-line so the macro expansion stays small.
[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

// Collects an optional streamed message for a failing CHECK.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailure(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace dgnn::util

#define DGNN_CHECK(cond)                                               \
  while (!(cond))                                                      \
  ::dgnn::util::internal_check::CheckMessageBuilder(__FILE__, __LINE__, \
                                                    #cond)

#define DGNN_CHECK_OP(a, b, op) DGNN_CHECK((a)op(b))                    \
    << "(" << (a) << " vs " << (b) << ") "

#define DGNN_CHECK_EQ(a, b) DGNN_CHECK_OP(a, b, ==)
#define DGNN_CHECK_NE(a, b) DGNN_CHECK_OP(a, b, !=)
#define DGNN_CHECK_LT(a, b) DGNN_CHECK_OP(a, b, <)
#define DGNN_CHECK_LE(a, b) DGNN_CHECK_OP(a, b, <=)
#define DGNN_CHECK_GT(a, b) DGNN_CHECK_OP(a, b, >)
#define DGNN_CHECK_GE(a, b) DGNN_CHECK_OP(a, b, >=)

// DCHECKs compile to nothing in NDEBUG builds; use them on hot paths.
#ifdef NDEBUG
#define DGNN_DCHECK(cond) \
  while (false) ::dgnn::util::internal_check::CheckMessageBuilder("", 0, "")
#define DGNN_DCHECK_EQ(a, b) DGNN_DCHECK((a) == (b))
#define DGNN_DCHECK_LT(a, b) DGNN_DCHECK((a) < (b))
#define DGNN_DCHECK_LE(a, b) DGNN_DCHECK((a) <= (b))
#define DGNN_DCHECK_GE(a, b) DGNN_DCHECK((a) >= (b))
#else
#define DGNN_DCHECK(cond) DGNN_CHECK(cond)
#define DGNN_DCHECK_EQ(a, b) DGNN_CHECK_EQ(a, b)
#define DGNN_DCHECK_LT(a, b) DGNN_CHECK_LT(a, b)
#define DGNN_DCHECK_LE(a, b) DGNN_CHECK_LE(a, b)
#define DGNN_DCHECK_GE(a, b) DGNN_CHECK_GE(a, b)
#endif

#endif  // DGNN_UTIL_CHECK_H_
