#include "util/rng.h"

#include <cmath>
#include <cstring>
#include <unordered_set>

#include "util/check.h"

namespace dgnn::util {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t n) {
  DGNN_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

float Rng::UniformFloat(float lo, float hi) {
  return static_cast<float>(UniformDouble(lo, hi));
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  // Avoid log(0).
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  DGNN_CHECK_GE(n, k);
  DGNN_CHECK_GE(k, 0);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  if (k == 0) return out;
  if (k * 3 < n) {
    std::unordered_set<int64_t> seen;
    seen.reserve(static_cast<size_t>(k) * 2);
    while (static_cast<int64_t>(out.size()) < k) {
      int64_t x = UniformInt(n);
      if (seen.insert(x).second) out.push_back(x);
    }
    return out;
  }
  // Dense draw: partial Fisher-Yates over [0, n).
  std::vector<int64_t> all(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(all[static_cast<size_t>(i)], all[static_cast<size_t>(j)]);
    out.push_back(all[static_cast<size_t>(i)]);
  }
  return out;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  DGNN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DGNN_CHECK_GE(w, 0.0);
    total += w;
  }
  DGNN_CHECK_GT(total, 0.0);
  double x = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xd1b54a32d192ed03ULL); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_spare_gaussian = has_spare_gaussian_;
  st.spare_gaussian = spare_gaussian_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_spare_gaussian_ = state.has_spare_gaussian;
  spare_gaussian_ = state.spare_gaussian;
}

void AppendRngState(const RngState& state, std::string* out) {
  for (uint64_t word : state.s) {
    out->append(reinterpret_cast<const char*>(&word), sizeof(word));
  }
  out->push_back(state.has_spare_gaussian ? 1 : 0);
  out->append(reinterpret_cast<const char*>(&state.spare_gaussian),
              sizeof(double));
}

Status ParseRngState(std::string_view bytes, size_t* pos, RngState* out) {
  constexpr size_t kEncoded = 4 * sizeof(uint64_t) + 1 + sizeof(double);
  if (*pos > bytes.size() || bytes.size() - *pos < kEncoded) {
    return Status::InvalidArgument("truncated rng state");
  }
  const char* p = bytes.data() + *pos;
  for (auto& word : out->s) {
    std::memcpy(&word, p, sizeof(word));
    p += sizeof(word);
  }
  out->has_spare_gaussian = *p != 0;
  ++p;
  std::memcpy(&out->spare_gaussian, p, sizeof(double));
  *pos += kEncoded;
  return Status::Ok();
}

}  // namespace dgnn::util
