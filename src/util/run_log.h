// Structured run log: a thread-safe, schema-versioned JSONL record of one
// training/evaluation run. Each line is a self-contained JSON object:
//
//   {"event":"epoch","v":1,"elapsed_s":1.234,"epoch":3,"loss":0.61,...}
//
// Event vocabulary (schema version dgnn.runlog v1):
//   run_start   config, model name, seed, thread count, dataset stats
//   epoch       per-epoch loss / wall time (+ metrics when evaluated)
//   eval        one evaluation pass: HR/NDCG per cutoff, seconds, users
//   grad_stats  per-named-parameter gradient diagnostics (see ag/diagnostics)
//   anomaly     numerics failure — names the producing tape op/parameter
//   checkpoint  parameter save/load with path and status
//   run_end     totals, final metrics, best epoch, early-stop flag
//
// Like telemetry, the log is process-global and DISABLED by default:
// every emit site guards on Active(), a single relaxed atomic load, so
// instrumented paths cost nothing when no --run-log flag was given.
// Emission itself takes a mutex (events are rare — per epoch / per eval /
// every grad_stats_every batches — never per tape op).
//
// The writer appends and flushes line-by-line, so a crashed run leaves a
// valid prefix: every complete line still parses. Consumers
// (examples/dgnn_inspect.cpp, ci/check_runlog.sh) must treat missing
// trailing events (no run_end) as "run died", not as corruption.

#ifndef DGNN_UTIL_RUN_LOG_H_
#define DGNN_UTIL_RUN_LOG_H_

#include <string>
#include <string_view>

#include "util/json.h"
#include "util/status.h"

namespace dgnn::runlog {

// Version stamped into every line's "v" field. Bump when an existing
// field changes meaning; adding fields is backward compatible.
inline constexpr int kSchemaVersion = 1;

// True when a log file is open; single relaxed atomic load. Guard event
// construction with this so disabled runs never pay for field formatting.
bool Active();

// Opens (truncating) the global run log. Replaces any previously open
// log. Thread-safe.
util::Status Open(const std::string& path);

// Flushes and closes; subsequent Emit calls are no-ops. Safe to call
// when no log is open.
void Close();

// Path of the open log, empty when inactive.
std::string CurrentPath();

// Appends one event line {"event":<event>,"v":1,"elapsed_s":...,<fields>}
// and flushes it. No-op when inactive. `event` should be one of the
// vocabulary names above; unknown events are written as-is (consumers
// must skip events they do not understand).
void Emit(std::string_view event, const util::JsonObject& fields);

// Lines written since Open (0 when inactive); exposed for tests.
int64_t NumEvents();

// Lines dropped by an injected append failure (failpoint
// "runlog.append"). Appends are best-effort: a failed write drops the
// line and counts it here rather than failing the run.
int64_t NumDropped();

}  // namespace dgnn::runlog

#endif  // DGNN_UTIL_RUN_LOG_H_
