#include "util/telemetry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/json.h"
#include "util/strings.h"

namespace dgnn::telemetry {
namespace {

std::atomic<bool> g_enabled{false};

// One buffered chrome-trace event ("ph":"X" complete slice).
struct SpanEvent {
  const char* name;
  const char* category;
  int64_t ts_us;   // start, relative to the process trace epoch
  int64_t dur_us;  // duration
  int tid;
};

// Hard cap on buffered spans so a long run cannot grow without bound;
// overflow is counted in "telemetry.dropped_spans".
constexpr size_t kMaxTraceEvents = 1 << 20;

enum class MetricKind { kCounter, kGauge, kTimer, kHistogram };

const char* KindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kTimer: return "timer";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

struct Metric {
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Timer> timer;
  std::unique_ptr<Histogram> histogram;
};

// Registry + span buffer. Metric objects themselves are lock-free to
// record into; the mutex only guards name lookup/registration and the
// span vector.
struct State {
  std::mutex mu;
  std::map<std::string, Metric, std::less<>> metrics;
  std::vector<SpanEvent> spans;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  int next_tid = 0;
};

State& GetState() {
  static State* state = new State();  // never destroyed: see header
  return *state;
}

// Small dense thread id for trace output (std::thread::id is opaque).
int CurrentTid() {
  thread_local int tid = [] {
    State& s = GetState();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.next_tid++;
  }();
  return tid;
}

Metric& GetMetric(std::string_view name, MetricKind kind) {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.metrics.find(name);
  if (it == s.metrics.end()) {
    Metric m;
    m.kind = kind;
    switch (kind) {
      case MetricKind::kCounter: m.counter = std::make_unique<Counter>(); break;
      case MetricKind::kGauge: m.gauge = std::make_unique<Gauge>(); break;
      case MetricKind::kTimer: m.timer = std::make_unique<Timer>(); break;
      case MetricKind::kHistogram:
        m.histogram = std::make_unique<Histogram>();
        break;
    }
    it = s.metrics.emplace(std::string(name), std::move(m)).first;
  }
  DGNN_CHECK(it->second.kind == kind)
      << "telemetry metric '" << std::string(name) << "' registered as "
      << KindName(it->second.kind) << ", requested as " << KindName(kind);
  return it->second;
}

// Escaping and double formatting come from util/json.h (shared with the
// run log); metric/span names are plain identifiers but a hostile name
// must not produce invalid JSON.
using util::JsonDouble;
using util::JsonEscape;

util::Status WriteStringToFile(const std::string& path,
                               const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return util::Status::NotFound("cannot open for writing: " + path);
  }
  out << content;
  if (!out.good()) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Reset() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& [name, m] : s.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter: m.counter->Zero(); break;
      case MetricKind::kGauge: m.gauge->Set(0.0); break;
      case MetricKind::kTimer: m.timer->Zero(); break;
      case MetricKind::kHistogram: m.histogram->Zero(); break;
    }
  }
  s.spans.clear();
  s.epoch = std::chrono::steady_clock::now();
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

double Histogram::BucketUpperBound(int i) {
  DGNN_CHECK_GE(i, 0);
  DGNN_CHECK_LT(i, kNumBuckets);
  return 1e-6 * static_cast<double>(int64_t{1} << i);
}

int Histogram::BucketIndex(double seconds) {
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (seconds <= BucketUpperBound(i)) return i;
  }
  return kNumBuckets - 1;
}

void Histogram::Record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // negatives and NaN clamp to 0
  const int b = BucketIndex(seconds);
  buckets_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t nanos = static_cast<int64_t>(
      std::min(seconds * 1e9, 9.2e18));  // clamp below INT64_MAX
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  // Lock-free running min/max.
  int64_t cur = min_nanos_.load(std::memory_order_relaxed);
  while (nanos < cur && !min_nanos_.compare_exchange_weak(
                            cur, nanos, std::memory_order_relaxed)) {
  }
  cur = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > cur && !max_nanos_.compare_exchange_weak(
                            cur, nanos, std::memory_order_relaxed)) {
  }
}

double Histogram::sum_seconds() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::min_seconds() const {
  const int64_t v = min_nanos_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0.0 : static_cast<double>(v) * 1e-9;
}

double Histogram::max_seconds() const {
  const int64_t v = max_nanos_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0.0 : static_cast<double>(v) * 1e-9;
}

double Histogram::ApproxQuantileSeconds(double q) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th value (1-based, ceil), walked over the cumulative
  // bucket counts. The answer is that bucket's upper bound, clamped into
  // the observed [min, max] so q=0/q=1 stay faithful.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(n))));
  int64_t cumulative = 0;
  double value = max_seconds();
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= rank) {
      value = BucketUpperBound(i);
      break;
    }
  }
  return std::min(std::max(value, min_seconds()), max_seconds());
}

std::vector<double> Histogram::ApproxQuantilesSeconds(
    const std::vector<double>& qs) const {
  // One consistent snapshot of the buckets; concurrent Records that land
  // mid-call cannot make a later quantile answer from different data
  // than an earlier one.
  int64_t counts[kNumBuckets];
  int64_t n = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = bucket_count(i);
    n += counts[i];
  }
  std::vector<double> out(qs.size(), 0.0);
  if (n <= 0) return out;
  const double lo = min_seconds();
  const double hi = max_seconds();

  // Sort quantile indices by rank, then walk the cumulative counts once.
  std::vector<size_t> order(qs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto rank_of = [&](double q) {
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(q * static_cast<double>(n))));
  };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rank_of(qs[a]) < rank_of(qs[b]);
  });

  int64_t cumulative = 0;
  int bucket = 0;
  for (size_t idx : order) {
    const int64_t rank = rank_of(qs[idx]);
    while (bucket < kNumBuckets && cumulative + counts[bucket] < rank) {
      cumulative += counts[bucket];
      ++bucket;
    }
    const double value =
        bucket < kNumBuckets ? BucketUpperBound(bucket) : hi;
    out[idx] = std::min(std::max(value, lo), hi);
  }
  return out;
}

Histogram::Counts Histogram::SnapshotCounts() const {
  Counts c;
  for (int i = 0; i < kNumBuckets; ++i) {
    c.buckets[i] = bucket_count(i);
    c.count += c.buckets[i];
  }
  c.sum_nanos = sum_nanos_.load(std::memory_order_relaxed);
  return c;
}

Histogram::Counts Histogram::SnapshotDelta(Counts* cursor) const {
  DGNN_CHECK(cursor != nullptr);
  const Counts now = SnapshotCounts();
  Counts delta;
  for (int i = 0; i < kNumBuckets; ++i) {
    delta.buckets[i] = now.buckets[i] - cursor->buckets[i];
    delta.count += delta.buckets[i];
  }
  delta.sum_nanos = now.sum_nanos - cursor->sum_nanos;
  *cursor = now;
  return delta;
}

double Histogram::QuantileFromCounts(const Counts& c, double q) {
  if (c.count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(c.count))));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += c.buckets[i];
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::Zero() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(INT64_MAX, std::memory_order_relaxed);
  max_nanos_.store(INT64_MIN, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter* GetCounter(std::string_view name) {
  return GetMetric(name, MetricKind::kCounter).counter.get();
}

Gauge* GetGauge(std::string_view name) {
  return GetMetric(name, MetricKind::kGauge).gauge.get();
}

Timer* GetTimer(std::string_view name) {
  return GetMetric(name, MetricKind::kTimer).timer.get();
}

Histogram* GetHistogram(std::string_view name) {
  return GetMetric(name, MetricKind::kHistogram).histogram.get();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name, const char* category, Timer* timer)
    : name_(name),
      category_(category),
      timer_(timer),
      active_(Enabled()) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  const int64_t dur_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count();
  if (timer_ != nullptr) timer_->RecordNanos(dur_ns);
  const int tid = CurrentTid();
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.spans.size() >= kMaxTraceEvents) {
    // Registry lock is held; bump the drop counter without re-locking.
    auto it = s.metrics.find(std::string_view("telemetry.dropped_spans"));
    if (it == s.metrics.end()) {
      Metric m;
      m.kind = MetricKind::kCounter;
      m.counter = std::make_unique<Counter>();
      it = s.metrics.emplace("telemetry.dropped_spans", std::move(m)).first;
    }
    it->second.counter->Add(1);
    return;
  }
  SpanEvent ev;
  ev.name = name_;
  ev.category = category_;
  ev.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(start_ -
                                                                   s.epoch)
                 .count();
  ev.dur_us = dur_ns / 1000;
  ev.tid = tid;
  s.spans.push_back(ev);
}

int64_t NumTraceEvents() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  return static_cast<int64_t>(s.spans.size());
}

int64_t TraceNowMicros() {
  const auto now = std::chrono::steady_clock::now();
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  return std::chrono::duration_cast<std::chrono::microseconds>(now - s.epoch)
      .count();
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

std::string MetricsJson() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string counters, gauges, timers, histograms;
  for (const auto& [name, m] : s.metrics) {
    const std::string key = "\"" + JsonEscape(name) + "\":";
    switch (m.kind) {
      case MetricKind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += key + std::to_string(m.counter->value());
        break;
      case MetricKind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += key + JsonDouble(m.gauge->value());
        break;
      case MetricKind::kTimer:
        if (!timers.empty()) timers += ',';
        timers += key + "{\"count\":" + std::to_string(m.timer->count()) +
                  ",\"total_seconds\":" +
                  JsonDouble(m.timer->total_seconds()) + "}";
        break;
      case MetricKind::kHistogram: {
        if (!histograms.empty()) histograms += ',';
        const Histogram& h = *m.histogram;
        std::string buckets;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const int64_t c = h.bucket_count(i);
          if (c == 0) continue;
          if (!buckets.empty()) buckets += ',';
          buckets += "{\"le\":" + JsonDouble(Histogram::BucketUpperBound(i)) +
                     ",\"count\":" + std::to_string(c) + "}";
        }
        histograms += key + "{\"count\":" + std::to_string(h.count()) +
                      ",\"sum_seconds\":" + JsonDouble(h.sum_seconds()) +
                      ",\"min_seconds\":" + JsonDouble(h.min_seconds()) +
                      ",\"max_seconds\":" + JsonDouble(h.max_seconds()) +
                      ",\"buckets\":[" + buckets + "]}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"timers\":{" + timers + "},\"histograms\":{" + histograms +
         "}}";
}

std::string TraceJson() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string events;
  events.reserve(s.spans.size() * 96);
  for (const SpanEvent& ev : s.spans) {
    if (!events.empty()) events += ",\n";
    events += "{\"name\":\"" + JsonEscape(ev.name) + "\",\"cat\":\"" +
              JsonEscape(ev.category) +
              "\",\"ph\":\"X\",\"ts\":" + std::to_string(ev.ts_us) +
              ",\"dur\":" + std::to_string(ev.dur_us) +
              ",\"pid\":1,\"tid\":" + std::to_string(ev.tid) + "}";
  }
  return "{\"traceEvents\":[\n" + events +
         "\n],\"displayTimeUnit\":\"ms\"}\n";
}

util::Status WriteMetricsJson(const std::string& path) {
  return WriteStringToFile(path, MetricsJson());
}

util::Status WriteTraceJson(const std::string& path) {
  return WriteStringToFile(path, TraceJson());
}

}  // namespace dgnn::telemetry
