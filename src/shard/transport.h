// Line-oriented Unix-domain-socket transport for router <-> shard RPCs.
//
// The protocol is exactly the NDJSON dgnn_serve already speaks on stdin:
// one JSON request per line in, one JSON response per line out. Keeping
// the framing identical means the shard worker reuses the single-process
// dispatch code verbatim, and every message is inspectable with a shell.
//
// Error taxonomy (what the router's retry policy keys on):
//  - kInternal      — connection-level failures: refused/failed connect,
//                     peer reset, unexpected EOF. Transient by contract;
//                     RetryWithBackoff retries these.
//  - kDeadlineExceeded — the caller's deadline passed first. NEVER
//                     retried (the budget is gone); the router maps it
//                     to a missing-shard degradation instead.

#ifndef DGNN_SHARD_TRANSPORT_H_
#define DGNN_SHARD_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace dgnn::shard {

using TimePoint = std::chrono::steady_clock::time_point;

// Client side: one connection, one outstanding request at a time. Not
// thread-safe; the router keeps a pool and hands a connection to a
// single attempt at a time.
class ShardConn {
 public:
  ~ShardConn();
  ShardConn(const ShardConn&) = delete;
  ShardConn& operator=(const ShardConn&) = delete;

  // Connects to a listening SocketServer; kInternal on refusal/timeout
  // (a worker that is down or still starting).
  static util::StatusOr<std::unique_ptr<ShardConn>> Connect(
      const std::string& path, int timeout_ms);

  // Writes `line` (newline appended) and blocks for one response line
  // (newline stripped). kInternal on reset/EOF — the connection is dead
  // afterwards and must be discarded; kDeadlineExceeded when `deadline`
  // passes first (also discard: a late reply may still arrive and would
  // desync the stream).
  util::StatusOr<std::string> Call(const std::string& line,
                                   TimePoint deadline);

 private:
  explicit ShardConn(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string rdbuf_;
};

// Worker side: accepts connections and runs `handler` per request line
// on a per-connection thread. Responses must be single-line JSON (the
// handler's result has any trailing newline stripped before framing).
class SocketServer {
 public:
  using Handler = std::function<std::string(const std::string& line)>;

  SocketServer() = default;
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds `path` (unlinking any stale socket first) and starts the
  // accept loop. `handler` may be called from many threads at once.
  util::Status Start(const std::string& path, Handler handler);

  // Stops accepting, wakes every connection (in-progress requests finish
  // and their responses are written), joins all threads, unlinks the
  // socket path. Idempotent.
  void Stop();

  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop();
  void ConnLoop(int fd);

  std::string path_;
  Handler handler_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace dgnn::shard

#endif  // DGNN_SHARD_TRANSPORT_H_
