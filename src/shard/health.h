// Per-shard health state machine: healthy / degraded / down, driven by
// two independent signals —
//
//  * heartbeat probes (RecordProbe): kConsecutiveProbeFailures missed
//    probes in a row take the shard DOWN; the first successful probe
//    after that brings it back as DEGRADED (trust is re-earned, not
//    restored wholesale) from where the outcome EWMA can recover it.
//  * per-request outcomes (RecordOutcome): an exponentially-weighted
//    moving average of the failure rate. Crossing degrade_threshold
//    marks the shard DEGRADED; decaying back under recover_threshold
//    (hysteresis — the two thresholds differ so the state cannot
//    flap on a single request) restores HEALTHY. Outcomes never take a
//    shard down by themselves: only missed heartbeats prove a worker is
//    unreachable, while failures may just mean overload.
//
// The router short-circuits dispatches to DOWN shards (fail fast, keep
// probing), treats DEGRADED as servable-but-suspect (hedging applies),
// and spreads normally over HEALTHY shards.

#ifndef DGNN_SHARD_HEALTH_H_
#define DGNN_SHARD_HEALTH_H_

#include <mutex>

namespace dgnn::shard {

enum class HealthState { kHealthy, kDegraded, kDown };

const char* HealthStateName(HealthState s);

struct HealthConfig {
  // Consecutive probe failures that take a shard down.
  int down_after_probe_failures = 3;
  // EWMA smoothing factor for per-request outcomes.
  double ewma_alpha = 0.2;
  // Failure-rate EWMA above this -> degraded.
  double degrade_threshold = 0.5;
  // ... and back below this -> healthy (hysteresis band).
  double recover_threshold = 0.1;
};

class ShardHealth {
 public:
  explicit ShardHealth(HealthConfig config = {}) : config_(config) {}

  HealthState state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  double failure_ewma() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ewma_;
  }

  void RecordProbe(bool ok);
  void RecordOutcome(bool ok);

 private:
  const HealthConfig config_;
  mutable std::mutex mu_;
  HealthState state_ = HealthState::kHealthy;
  int consecutive_probe_failures_ = 0;
  double ewma_ = 0.0;
};

}  // namespace dgnn::shard

#endif  // DGNN_SHARD_HEALTH_H_
