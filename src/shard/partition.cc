#include "shard/partition.h"

#include <algorithm>
#include <cstring>

namespace dgnn::shard {

using util::Status;
using util::StatusOr;

StatusOr<serve::Snapshot> BuildShardSnapshot(const serve::Snapshot& full,
                                             int32_t shard_index,
                                             int32_t num_shards,
                                             uint64_t hash_seed) {
  if (num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (shard_index < 0 || shard_index >= num_shards) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (!full.shard.empty()) {
    return Status::InvalidArgument("snapshot is already a shard slice");
  }
  if (full.has_quant_users() || full.has_quant_items()) {
    return Status::InvalidArgument(
        "cannot shard a quantized snapshot: shard before quantizing (the "
        "scatter/gather merge requires exact fp32 scans)");
  }
  if (!full.ivf.empty()) {
    return Status::InvalidArgument(
        "cannot shard an indexed snapshot: shards run exact scans over "
        "their slice");
  }

  const int64_t num_users = full.users.rows();
  const int64_t num_items = full.items.rows();
  const int64_t dim = full.users.cols();

  serve::Snapshot out;
  out.meta = full.meta;  // GLOBAL counts stay in the meta
  out.shard.num_shards = num_shards;
  out.shard.shard_index = shard_index;
  out.shard.hash_seed = hash_seed;
  serve::ShardItemRange(num_items, num_shards, shard_index,
                        &out.shard.item_begin, &out.shard.item_end);

  const std::vector<int32_t> owned = serve::OwnedUsers(out.shard, num_users);
  out.shard.num_owned_users = static_cast<int64_t>(owned.size());

  out.users = ag::Tensor(static_cast<int64_t>(owned.size()), dim);
  for (size_t r = 0; r < owned.size(); ++r) {
    std::memcpy(out.users.row(static_cast<int64_t>(r)),
                full.users.row(owned[r]),
                static_cast<size_t>(dim) * sizeof(float));
  }

  const int64_t item_rows = out.shard.item_end - out.shard.item_begin;
  out.items = ag::Tensor(item_rows, dim);
  if (item_rows > 0) {
    std::memcpy(out.items.data(), full.items.row(out.shard.item_begin),
                static_cast<size_t>(item_rows * dim) * sizeof(float));
  }

  // Every global user keeps a seen list (filters apply on all item
  // shards), restricted to this shard's item range, ids global.
  out.seen.resize(full.seen.size());
  const int32_t lo = static_cast<int32_t>(out.shard.item_begin);
  const int32_t hi = static_cast<int32_t>(out.shard.item_end);
  for (size_t u = 0; u < full.seen.size(); ++u) {
    const std::vector<int32_t>& src = full.seen[u];
    // Lists are sorted ascending, so the slice is a contiguous run.
    auto b = std::lower_bound(src.begin(), src.end(), lo);
    auto e = std::lower_bound(b, src.end(), hi);
    out.seen[u].assign(b, e);
  }

  out.social.assign(full.social.size(), std::vector<int32_t>());

  out.item_counts.assign(
      full.item_counts.begin() + out.shard.item_begin,
      full.item_counts.begin() + out.shard.item_end);
  return out;
}

Status WriteShardSnapshots(const serve::Snapshot& full,
                           const std::string& base_path, int32_t num_shards,
                           uint64_t hash_seed) {
  for (int32_t i = 0; i < num_shards; ++i) {
    auto slice = BuildShardSnapshot(full, i, num_shards, hash_seed);
    if (!slice.ok()) return slice.status();
    DGNN_RETURN_IF_ERROR(serve::WriteSnapshot(
        slice.value(),
        serve::ShardSnapshotPath(base_path, i, num_shards)));
  }
  return Status::Ok();
}

}  // namespace dgnn::shard
