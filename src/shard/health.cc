#include "shard/health.h"

namespace dgnn::shard {

const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kDown: return "down";
  }
  return "?";
}

void ShardHealth::RecordProbe(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    consecutive_probe_failures_ = 0;
    if (state_ == HealthState::kDown) {
      // Back from the dead: re-enter as degraded with the EWMA parked at
      // the degrade threshold, so a run of clean outcomes (not just one
      // lucky probe) is what restores full health.
      state_ = HealthState::kDegraded;
      ewma_ = config_.degrade_threshold;
    }
    return;
  }
  ++consecutive_probe_failures_;
  if (consecutive_probe_failures_ >= config_.down_after_probe_failures) {
    state_ = HealthState::kDown;
  }
}

void ShardHealth::RecordOutcome(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ewma_ = (1.0 - config_.ewma_alpha) * ewma_ +
          config_.ewma_alpha * (ok ? 0.0 : 1.0);
  if (state_ == HealthState::kDown) {
    // Only probes resurrect a down shard; a stray late success must not.
    return;
  }
  if (state_ == HealthState::kHealthy &&
      ewma_ >= config_.degrade_threshold) {
    state_ = HealthState::kDegraded;
  } else if (state_ == HealthState::kDegraded &&
             ewma_ <= config_.recover_threshold) {
    state_ = HealthState::kHealthy;
  }
}

}  // namespace dgnn::shard
