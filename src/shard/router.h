// Health-checked scatter/gather router over a fleet of dgnn_serve shard
// workers (the tentpole of the fault-tolerant sharded serving layer).
//
// The router speaks the classic client protocol upward (topk / score /
// similar_users with the exact response shapes dgnn_serve prints) and
// the shard vocabulary downward (user_vector / topk_partial /
// similar_partial / score_item over shard/transport.h sockets):
//
//   topk(user):  1. fetch the user's scoring vector from the shard the
//                   consistent-hash ring says owns the user;
//                2. scatter topk_partial(query) to every item shard;
//                3. merge the per-shard top-ks with serve::SelectTopK —
//                   the same (score desc, id asc) total order every
//                   scoring path ranks through, so a full-fleet answer
//                   is BIT-IDENTICAL to a single-process scan.
//
// Robustness model:
//  - Health: per shard a ShardHealth state machine fed by a background
//    probe thread (liveness + identity + load signals) and by
//    per-request outcomes. DOWN shards are short-circuited (fail fast,
//    keep probing); a recovered probe re-admits the shard as DEGRADED.
//  - Deadlines: every op gets one admission deadline; each dispatch gets
//    min(remaining, shard_timeout_ms) and the REMAINING budget rides the
//    request line as deadline_ms, so a shard's engine sheds work the
//    client already gave up on. No op can hang: every wait is bounded.
//  - Retries: transient transport failures (kInternal: refused / reset /
//    EOF) retry with capped backoff while deadline budget remains;
//    kDeadlineExceeded never retries. Counter serve.shard.retries.
//  - Hedging: with hedge_ms > 0, a dispatch still pending after hedge_ms
//    launches a second attempt on a fresh connection; first success
//    wins. Counter serve.shard.hedges.
//  - Partial degradation: item shards that stay unreachable are dropped
//    from the gather — the response carries degraded:true and
//    missing_shards naming them. An unreachable USER shard falls back
//    to the popularity ranking (counter serve.shard.failovers). Only
//    when every shard fails does an op return ok=false.
//  - Shedding: with max_inflight > 0, ops beyond the in-flight bound get
//    an immediate ok=false "overloaded" (the PR-5 admission-control
//    signal, applied fleet-wide); per-shard probe responses surface each
//    worker's own shed counter as an `overloaded` flag in stats.
//  - Coordinated swap: two-phase across the fleet — swap_prepare on
//    every shard (stage + validate, publish nothing), then swap_commit
//    everywhere; any prepare failure aborts the stage on every shard and
//    no worker changes snapshots.
//
// Failpoints (all router-side): shard.dispatch (per dispatch attempt),
// shard.probe (per probe), shard.merge (before the gather merge),
// shard.swap (per prepare RPC).

#ifndef DGNN_SHARD_ROUTER_H_
#define DGNN_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "serve/snapshot.h"
#include "shard/health.h"
#include "shard/transport.h"
#include "util/status.h"
#include "util/telemetry.h"
#include "util/windowed_stats.h"

namespace dgnn::shard {

struct RouterConfig {
  // Unix socket paths, one per shard; position i must be the worker
  // serving shard index i (Start() verifies against each probe).
  std::vector<std::string> shard_paths;
  int connect_timeout_ms = 500;
  // Per-attempt dispatch budget (each retry/hedge gets at most this).
  int shard_timeout_ms = 1000;
  int probe_timeout_ms = 250;
  int swap_timeout_ms = 10000;
  // Admission deadline for ops that don't carry their own deadline_ms;
  // <= 0 means "none" (internally clamped to an hour so nothing hangs).
  int64_t default_deadline_ms = 0;
  // Extra attempts after the first on transient transport errors.
  int retries = 2;
  // Launch a hedged second attempt for dispatches still pending after
  // this many ms; 0 disables hedging.
  int hedge_ms = 0;
  int probe_interval_ms = 100;
  // Fleet-wide in-flight op bound; ops beyond it are shed. 0 = unbounded.
  int max_inflight = 0;
  HealthConfig health;
};

// What a worker's probe reports about itself (Start() cross-checks the
// fleet: one ring, one catalog, disjoint covering item ranges).
struct ShardIdentity {
  int32_t shard_index = 0;
  int32_t num_shards = 0;  // 0 = worker serves an unsharded snapshot
  int64_t item_begin = 0;
  int64_t item_end = 0;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t dim = 0;
  uint64_t hash_seed = 0;
};

struct RouterShardStatus {
  int shard = 0;
  std::string path;
  HealthState state = HealthState::kHealthy;
  double failure_ewma = 0.0;
  bool overloaded = false;
  int64_t snapshot_version = 0;
  int64_t queue_depth = 0;
  int64_t requests = 0;
  int64_t failures = 0;
};

struct RouterCounters {
  int64_t requests = 0;
  int64_t retries = 0;
  int64_t hedges = 0;
  int64_t failovers = 0;
  int64_t degraded_responses = 0;
  int64_t shed = 0;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Probes every shard (with retries inside connect_timeout budgets),
  // verifies the fleet agrees on one manifest (ring seed, catalog
  // shape, shard count, canonical item ranges), builds the ring, and
  // starts the background probe thread. The router refuses to start
  // over an inconsistent fleet.
  util::Status Start();

  // BeginDrain + join probes + drop pooled connections. Idempotent.
  void Stop();

  // Client ops; deadline_ms: >0 explicit, 0 = config default, <0 = none.
  // Responses reuse serve::Response (ok/error/items/score/degraded/
  // snapshot_version/trace_id) plus missing_shards on partial answers.
  serve::Response TopK(int32_t user, int k, int64_t deadline_ms = 0);
  serve::Response Score(int32_t user, int32_t item,
                        int64_t deadline_ms = 0);
  serve::Response SimilarUsers(int32_t user, int k,
                               int64_t deadline_ms = 0);

  // Two-phase coordinated snapshot swap: prepare everywhere, then commit
  // everywhere. Any prepare failure aborts the stage on every shard and
  // returns the failing shard in the error. Returns the fleet's new
  // snapshot version on success.
  util::StatusOr<int64_t> CoordinatedSwap(const std::string& prefix);

  // Stops probing and blocks until every in-flight op AND every
  // straggling dispatch attempt (hedges included) has finished — the
  // SIGTERM drain barrier before serve_end.
  void BeginDrain();

  // {"ok":true,"op":"stats",...}: serve.shard.* counters plus per-shard
  // health, load and rolling 1s/10s/60s windows of router-observed
  // qps/latency.
  std::string StatsJson();

  RouterCounters counters() const;
  std::vector<RouterShardStatus> ShardStatuses();

  int32_t num_shards() const {
    return static_cast<int32_t>(shards_.size());
  }
  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return dim_; }
  // Owning shard of `user` under the fleet's ring.
  int32_t OwnerShard(int32_t user) const { return ring_.Owner(user); }

 private:
  struct ShardEntry {
    std::string path;
    ShardIdentity id;
    ShardHealth health;
    std::mutex pool_mu;
    std::vector<std::unique_ptr<ShardConn>> pool;
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> failures{0};
    std::atomic<int64_t> snapshot_version{0};
    std::atomic<int64_t> queue_depth{0};
    std::atomic<bool> overloaded{false};
    int64_t last_shed = 0;  // probe-thread only
    telemetry::Histogram latency;
    std::unique_ptr<telemetry::WindowedStats> windows;
    // Probe-thread window cursors.
    int64_t win_requests = 0;
    int64_t win_ok = 0;
    telemetry::Histogram::Counts win_latency;

    explicit ShardEntry(HealthConfig hc) : health(hc) {}
  };

  // RAII in-flight op accounting (drain barrier + max_inflight).
  class OpGuard;

  TimePoint DeadlineFor(int64_t deadline_ms) const;
  util::StatusOr<std::unique_ptr<ShardConn>> GetConn(ShardEntry& e);
  void PutConn(ShardEntry& e, std::unique_ptr<ShardConn> conn);
  // One dispatch attempt on one fresh-or-pooled connection. Probes skip
  // the shard.dispatch failpoint and the outcome EWMA (they have their
  // own site and feed RecordProbe instead).
  util::StatusOr<std::string> AttemptOnce(ShardEntry& e,
                                          const std::string& line,
                                          TimePoint deadline, bool probe);
  util::StatusOr<std::string> HedgedAttempt(ShardEntry& e,
                                            const std::string& line,
                                            TimePoint deadline);
  // Full dispatch policy: down short-circuit, per-attempt sub-deadline,
  // retry-on-transient with backoff, optional hedging.
  util::StatusOr<std::string> CallShard(int shard, const std::string& line,
                                        TimePoint deadline);
  // Parallel scatter of `line` to every shard; result i is shard i's
  // raw response line (error status on unreachable shards).
  std::vector<util::StatusOr<std::string>> Scatter(const std::string& line,
                                                   TimePoint deadline);
  util::Status ProbeShardOnce(ShardEntry& e, ShardIdentity* id_out);
  void ProbeLoop();
  void TickWindows();
  // Fetches the user's scoring vector from the owning shard. Returns:
  // true + vector/norm on success; false with *fallback=true when the
  // answer must degrade (owner unreachable -> missing/failover, or the
  // engine reported the user unknown).
  bool FetchUserVector(int32_t user, TimePoint deadline,
                       std::vector<float>* vec, float* norm,
                       std::vector<int32_t>* missing, bool* failover);
  void IncAttempts();
  void DecAttempts();

  const RouterConfig config_;
  serve::ShardRing ring_;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  std::vector<std::unique_ptr<ShardEntry>> shards_;

  std::atomic<bool> started_{false};
  std::atomic<bool> probe_stop_{false};
  std::thread probe_thread_;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  std::chrono::steady_clock::time_point last_tick_{};

  std::atomic<int64_t> trace_seq_{0};
  std::atomic<int64_t> swap_seq_{0};
  std::atomic<int64_t> n_requests_{0};
  std::atomic<int64_t> n_retries_{0};
  std::atomic<int64_t> n_hedges_{0};
  std::atomic<int64_t> n_failovers_{0};
  std::atomic<int64_t> n_degraded_{0};
  std::atomic<int64_t> n_shed_{0};

  // Drain barrier: ops + detached straggler attempts still running.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int64_t inflight_ops_ = 0;
  int64_t inflight_attempts_ = 0;
};

}  // namespace dgnn::shard

#endif  // DGNN_SHARD_ROUTER_H_
