#include "shard/transport.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

namespace dgnn::shard {
namespace {

using util::Status;
using util::StatusOr;

Status FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

int RemainingMs(TimePoint deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  // poll() takes an int; clamp instead of overflowing on "no deadline"
  // sentinels far in the future.
  return static_cast<int>(std::min<int64_t>(ms + 1, 1 << 30));
}

}  // namespace

ShardConn::~ShardConn() {
  if (fd_ >= 0) close(fd_);
}

StatusOr<std::unique_ptr<ShardConn>> ShardConn::Connect(
    const std::string& path, int timeout_ms) {
  sockaddr_un addr;
  DGNN_RETURN_IF_ERROR(FillAddr(path, &addr));
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  // Non-blocking from the start so connect and every later read/write
  // can be bounded by poll().
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const std::string err = strerror(errno);
      close(fd);
      return Status::Internal("connect " + path + ": " + err);
    }
    pollfd p{fd, POLLOUT, 0};
    const int rc = poll(&p, 1, std::max(timeout_ms, 0));
    if (rc <= 0) {
      close(fd);
      return Status::Internal("connect " + path + ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close(fd);
      return Status::Internal("connect " + path + ": " + strerror(err));
    }
  }
  return std::unique_ptr<ShardConn>(new ShardConn(fd));
}

StatusOr<std::string> ShardConn::Call(const std::string& line,
                                      TimePoint deadline) {
  std::string msg = line;
  msg.push_back('\n');
  size_t written = 0;
  while (written < msg.size()) {
    // MSG_NOSIGNAL: a peer killed mid-conversation must surface as EPIPE
    // (-> kInternal -> retry/degrade), never as a process-wide SIGPIPE.
    const ssize_t n = send(fd_, msg.data() + written,
                           msg.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = RemainingMs(deadline);
      if (wait == 0) return Status::DeadlineExceeded("shard call write");
      pollfd p{fd_, POLLOUT, 0};
      if (poll(&p, 1, wait) <= 0) {
        return Status::DeadlineExceeded("shard call write");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("shard write: ") +
                            (n < 0 ? strerror(errno) : "short write"));
  }

  // rdbuf_ survives across calls; with one outstanding request per
  // connection it only ever holds a prefix of the next response.
  for (;;) {
    const size_t nl = rdbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string result = rdbuf_.substr(0, nl);
      rdbuf_.erase(0, nl + 1);
      return result;
    }
    char buf[4096];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      rdbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Internal("shard connection closed");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int wait = RemainingMs(deadline);
      if (wait == 0) return Status::DeadlineExceeded("shard call read");
      pollfd p{fd_, POLLIN, 0};
      if (poll(&p, 1, wait) <= 0) {
        return Status::DeadlineExceeded("shard call read");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("shard read: ") + strerror(errno));
  }
}

SocketServer::~SocketServer() { Stop(); }

util::Status SocketServer::Start(const std::string& path, Handler handler) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("socket server already running");
  }
  sockaddr_un addr;
  DGNN_RETURN_IF_ERROR(FillAddr(path, &addr));
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  unlink(path.c_str());  // a stale socket from a killed worker
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("bind " + path + ": " + err);
  }
  if (listen(fd, 64) != 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("listen " + path + ": " + err);
  }
  path_ = path;
  handler_ = std::move(handler);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (EBADF/EINVAL) — or something is
      // wrong enough that looping would spin; either way, exit.
      return;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ConnLoop(fd); });
  }
}

void SocketServer::ConnLoop(int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.empty()) continue;
      std::string resp = handler_(line);
      while (!resp.empty() && resp.back() == '\n') resp.pop_back();
      resp.push_back('\n');
      size_t written = 0;
      while (written < resp.size()) {
        const ssize_t n = send(fd, resp.data() + written,
                               resp.size() - written, MSG_NOSIGNAL);
        if (n > 0) {
          written += static_cast<size_t>(n);
        } else if (n < 0 && errno == EINTR) {
          continue;
        } else {
          return;  // peer went away mid-response
        }
      }
      continue;
    }
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // EOF (client closed / Stop() shutdown) or hard error
  }
}

void SocketServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Shut the listener down; the accept thread unblocks with an error.
  shutdown(listen_fd_, SHUT_RDWR);
  close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    fds.swap(conn_fds_);
    threads.swap(conn_threads_);
  }
  // SHUT_RD: each connection thread's next read sees EOF and exits after
  // writing any in-progress response (graceful to in-flight requests).
  for (int fd : fds) shutdown(fd, SHUT_RD);
  for (auto& t : threads) t.join();
  for (int fd : fds) close(fd);
  listen_fd_ = -1;
  if (!path_.empty()) unlink(path_.c_str());
}

}  // namespace dgnn::shard
