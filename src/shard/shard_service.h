// Worker-side shard protocol: the ops a dgnn_serve shard worker answers
// beyond the classic client ops, plus the staged two-phase snapshot
// swap. One ShardService wraps one ServingEngine; HandleLine() is the
// complete NDJSON request->response function the socket transport (and
// the stdin loop) plug in.
//
// Ops (one JSON object per line):
//   {"op":"probe"}                          liveness + identity + load
//   {"op":"user_vector","user":u}           owning shard's scoring vector
//   {"op":"topk_partial","k":K,"query":[..],"user":u}
//   {"op":"topk_partial","k":K,"popularity":true}
//   {"op":"similar_partial","k":K,"query":[..],"norm":x,"user":u}
//   {"op":"score_item","item":i,"query":[..]}
//   {"op":"swap_prepare","prefix":P,"token":T}   stage (read+validate)
//   {"op":"swap_commit","token":T}               publish staged snapshot
//   {"op":"swap_abort","token":T}                drop staged snapshot
//   plus the classic topk / score / similar_users / stats ops with the
//   same response shapes dgnn_serve prints on stdout.
//
// Two-phase swap contract: prepare reads and FULLY validates the new
// snapshot (sharded workers resolve "<prefix>.shard<i>of<N>" themselves
// and reject slices for the wrong shard identity) but publishes nothing;
// commit atomically swaps the staged snapshot in; abort (or a drain —
// dgnn_serve calls AbortStagedSwap on SIGTERM) drops it. A prepare
// failure on any shard lets the router abort everywhere, so the fleet
// never serves mixed versions because one worker's disk was bad.

#ifndef DGNN_SHARD_SHARD_SERVICE_H_
#define DGNN_SHARD_SHARD_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>

#include "serve/engine.h"
#include "util/json.h"

namespace dgnn::shard {

class ShardService {
 public:
  ShardService(serve::ServingEngine& engine, std::string snapshot_path)
      : engine_(engine), snapshot_path_(std::move(snapshot_path)) {}

  // Full line handler: parse, dispatch, respond (single-line JSON).
  // Thread-safe; scoring ops micro-batch through the engine as usual.
  std::string HandleLine(const std::string& line);

  // Dispatches one parsed request. Returns false when `op` is not a
  // shard-protocol op (caller falls through to its own ops), true with
  // *out filled otherwise.
  bool HandleShardOp(const util::JsonValue& req, const std::string& op,
                     std::string* out);

  // Drops a staged (prepared-but-uncommitted) swap, if any; returns
  // whether one was staged. The drain path calls this so a SIGTERM
  // mid-two-phase-swap aborts instead of orphaning the staged snapshot.
  bool AbortStagedSwap();

  bool has_staged() const {
    std::lock_guard<std::mutex> lock(mu_);
    return staged_ != nullptr;
  }

 private:
  std::string Probe();
  std::string SwapPrepare(const util::JsonValue& req);
  std::string SwapCommit(const util::JsonValue& req);
  std::string SwapAbort(const util::JsonValue& req);

  serve::ServingEngine& engine_;
  const std::string snapshot_path_;
  mutable std::mutex mu_;
  std::shared_ptr<const serve::Snapshot> staged_;
  std::string staged_token_;
};

}  // namespace dgnn::shard

#endif  // DGNN_SHARD_SHARD_SERVICE_H_
