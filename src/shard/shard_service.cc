#include "shard/shard_service.h"

#include <utility>

#include "serve/observe.h"
#include "serve/snapshot.h"
#include "shard/wire.h"
#include "util/json.h"
#include "util/status.h"

namespace dgnn::shard {
namespace {

using util::JsonObject;
using util::JsonValue;

std::string ErrorLine(const std::string& op, const std::string& message) {
  JsonObject o;
  o.Set("ok", false).Set("op", op).Set("error", message);
  return o.Build();
}

std::string EngineErrorLine(const serve::Response& resp) {
  JsonObject o;
  o.Set("ok", false).Set("error", resp.error).Set("trace_id",
                                                  resp.trace_id);
  return o.Build();
}

// The common prefix of every successful engine-backed response; matches
// what dgnn_serve prints on stdout for the classic ops.
JsonObject ResponseHead(const std::string& op, const serve::Response& resp) {
  JsonObject o;
  o.Set("ok", true)
      .Set("op", op)
      .Set("trace_id", resp.trace_id)
      .Set("degraded", resp.degraded)
      .Set("snapshot_version", resp.snapshot_version);
  return o;
}

}  // namespace

std::string ShardService::Probe() {
  const auto snap = engine_.snapshot();
  if (snap == nullptr) {
    return ErrorLine("probe", "no snapshot loaded");
  }
  const serve::EngineStats stats = engine_.stats();
  JsonObject o;
  o.Set("ok", true)
      .Set("op", "probe")
      .Set("shard_index", static_cast<int64_t>(snap->shard.shard_index))
      .Set("num_shards", static_cast<int64_t>(snap->shard.num_shards))
      .Set("item_begin", snap->shard.item_begin)
      .Set("item_end", snap->shard.item_end)
      // Decimal string, not a JSON number: a 64-bit seed must survive
      // the wire exactly and doubles only carry 53 bits.
      .Set("hash_seed", std::to_string(snap->shard.hash_seed))
      .Set("num_users", snap->meta.num_users)
      .Set("num_items", snap->meta.num_items)
      .Set("dim", snap->meta.embedding_dim)
      .Set("snapshot_version", engine_.swap_count())
      .Set("queue_depth", engine_.queue_depth())
      .Set("shed_requests", stats.shed_requests)
      .Set("resident_bytes", serve::SnapshotResidentBytes(*snap))
      .Set("staged", has_staged());
  return o.Build();
}

std::string ShardService::SwapPrepare(const JsonValue& req) {
  const std::string prefix = req.StringOr("prefix", "");
  const std::string token = req.StringOr("token", "");
  if (prefix.empty() || token.empty()) {
    return ErrorLine("swap_prepare",
                     "swap_prepare requires \"prefix\" and \"token\"");
  }
  const auto current = engine_.snapshot();
  if (current == nullptr) {
    return ErrorLine("swap_prepare", "no snapshot loaded");
  }
  // Sharded workers resolve their own slice of the export; an unsharded
  // worker (single-process deployment speaking the same protocol) takes
  // the prefix as the literal path.
  const std::string path =
      current->shard.empty()
          ? prefix
          : serve::ShardSnapshotPath(prefix, current->shard.shard_index,
                                     current->shard.num_shards);
  auto loaded = serve::ReadSnapshot(path);
  if (!loaded.ok()) {
    return ErrorLine("swap_prepare", loaded.status().ToString());
  }
  serve::Snapshot snap = std::move(loaded).value();
  // The staged snapshot must be a slice for THIS shard identity: same
  // ring (num_shards + seed) and same index, or committing would splice
  // a foreign ownership map into a live fleet.
  if (!current->shard.empty()) {
    if (snap.shard.num_shards != current->shard.num_shards ||
        snap.shard.shard_index != current->shard.shard_index ||
        snap.shard.hash_seed != current->shard.hash_seed) {
      return ErrorLine(
          "swap_prepare",
          "staged snapshot '" + path + "' is for shard " +
              std::to_string(snap.shard.shard_index) + "/" +
              std::to_string(snap.shard.num_shards) +
              ", this worker serves shard " +
              std::to_string(current->shard.shard_index) + "/" +
              std::to_string(current->shard.num_shards));
    }
  } else if (!snap.shard.empty()) {
    return ErrorLine("swap_prepare",
                     "staged snapshot '" + path +
                         "' is a shard slice but this worker serves an "
                         "unsharded snapshot");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    staged_ = std::make_shared<const serve::Snapshot>(std::move(snap));
    staged_token_ = token;
  }
  JsonObject o;
  o.Set("ok", true)
      .Set("op", "swap_prepare")
      .Set("token", token)
      .Set("path", path);
  return o.Build();
}

std::string ShardService::SwapCommit(const JsonValue& req) {
  const std::string token = req.StringOr("token", "");
  std::shared_ptr<const serve::Snapshot> snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (staged_ == nullptr || staged_token_ != token) {
      return ErrorLine("swap_commit",
                       staged_ == nullptr
                           ? "no staged swap"
                           : "staged token mismatch (staged '" +
                                 staged_token_ + "', commit '" + token +
                                 "')");
    }
    snap = std::move(staged_);
    staged_.reset();
    staged_token_.clear();
  }
  engine_.Swap(std::move(snap));
  JsonObject o;
  o.Set("ok", true)
      .Set("op", "swap_commit")
      .Set("token", token)
      .Set("snapshot_version", engine_.swap_count());
  return o.Build();
}

std::string ShardService::SwapAbort(const JsonValue& req) {
  const std::string token = req.StringOr("token", "");
  bool aborted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Abort is idempotent and forgiving: an empty token (or the staged
    // one) drops the stage; a mismatched token is a no-op "nothing to
    // abort", never an error — the caller is cleaning up.
    if (staged_ != nullptr && (token.empty() || token == staged_token_)) {
      staged_.reset();
      staged_token_.clear();
      aborted = true;
    }
  }
  JsonObject o;
  o.Set("ok", true)
      .Set("op", "swap_abort")
      .Set("token", token)
      .Set("aborted", aborted);
  return o.Build();
}

bool ShardService::AbortStagedSwap() {
  std::lock_guard<std::mutex> lock(mu_);
  const bool had = staged_ != nullptr;
  staged_.reset();
  staged_token_.clear();
  return had;
}

bool ShardService::HandleShardOp(const JsonValue& req, const std::string& op,
                                 std::string* out) {
  if (op == "probe") {
    *out = Probe();
    return true;
  }
  if (op == "swap_prepare") {
    *out = SwapPrepare(req);
    return true;
  }
  if (op == "swap_commit") {
    *out = SwapCommit(req);
    return true;
  }
  if (op == "swap_abort") {
    *out = SwapAbort(req);
    return true;
  }

  serve::Request request;
  if (op == "user_vector") {
    request.type = serve::Request::Type::kUserVector;
  } else if (op == "topk_partial") {
    request.type = serve::Request::Type::kTopKPartial;
  } else if (op == "similar_partial") {
    request.type = serve::Request::Type::kSimilarPartial;
  } else if (op == "score_item") {
    request.type = serve::Request::Type::kScoreItem;
  } else {
    return false;
  }
  request.user = static_cast<int32_t>(req.NumberOr("user", -1));
  request.item = static_cast<int32_t>(req.NumberOr("item", -1));
  request.k = static_cast<int>(req.NumberOr("k", 10));
  request.timeout_ms = static_cast<int64_t>(req.NumberOr("deadline_ms", 0));
  request.popularity = req.BoolOr("popularity", false);
  request.query_norm = static_cast<float>(req.NumberOr("norm", 0.0));
  const JsonValue* query = req.Find("query");
  if (query != nullptr && !ParseFloatArray(query, &request.query)) {
    *out = ErrorLine(op, "\"query\" must be a number array");
    return true;
  }

  const serve::Response resp = engine_.Handle(request);
  if (!resp.ok) {
    *out = EngineErrorLine(resp);
    return true;
  }
  JsonObject o = ResponseHead(op, resp);
  switch (request.type) {
    case serve::Request::Type::kUserVector:
      o.Set("user", static_cast<int64_t>(request.user))
          .Set("norm", static_cast<double>(resp.vector_norm))
          .SetRaw("vector", FloatsJson(resp.vector));
      break;
    case serve::Request::Type::kScoreItem:
      o.Set("item", static_cast<int64_t>(request.item))
          .Set("score", static_cast<double>(resp.score));
      break;
    default:  // the partial rankers
      o.Set("k", static_cast<int64_t>(request.k))
          .SetRaw("items", ItemsJson(resp.items));
      break;
  }
  *out = o.Build();
  return true;
}

std::string ShardService::HandleLine(const std::string& line) {
  auto parsed = util::ParseJson(line);
  if (!parsed.ok()) {
    JsonObject o;
    o.Set("ok", false).Set("error", "request is not valid JSON: " +
                                        parsed.status().message());
    return o.Build();
  }
  const JsonValue& req = parsed.value();
  const std::string op = req.StringOr("op", "");
  std::string out;
  if (HandleShardOp(req, op, &out)) {
    return out;
  }

  if (op == "stats") {
    JsonObject o;
    o.Set("ok", true).Set("op", op);
    serve::observe::AppendStatsFields(engine_, &o);
    return o.Build();
  }

  // The classic client ops, with the exact response shapes dgnn_serve
  // prints on stdout — a shard worker's socket is a superset of the
  // single-process protocol.
  serve::Request request;
  if (op == "topk") {
    request.type = serve::Request::Type::kTopK;
  } else if (op == "score") {
    request.type = serve::Request::Type::kScore;
  } else if (op == "similar_users") {
    request.type = serve::Request::Type::kSimilarUsers;
  } else {
    JsonObject o;
    o.Set("ok", false).Set("error", "unknown op '" + op + "'");
    return o.Build();
  }
  request.user = static_cast<int32_t>(req.NumberOr("user", -1));
  request.item = static_cast<int32_t>(req.NumberOr("item", -1));
  request.k = static_cast<int>(req.NumberOr("k", 10));
  request.timeout_ms = static_cast<int64_t>(req.NumberOr("deadline_ms", 0));
  const serve::Response resp = engine_.Handle(request);
  if (!resp.ok) {
    return EngineErrorLine(resp);
  }
  JsonObject o;
  o.Set("ok", true)
      .Set("op", op)
      .Set("user", static_cast<int64_t>(request.user))
      .Set("trace_id", resp.trace_id)
      .Set("degraded", resp.degraded)
      .Set("snapshot_version", resp.snapshot_version);
  if (request.type == serve::Request::Type::kScore) {
    o.Set("item", static_cast<int64_t>(request.item))
        .Set("score", static_cast<double>(resp.score));
  } else {
    o.Set("k", static_cast<int64_t>(request.k))
        .SetRaw("items", ItemsJson(resp.items));
  }
  return o.Build();
}

}  // namespace dgnn::shard
