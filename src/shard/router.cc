#include "shard/router.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "serve/observe.h"
#include "serve/ranking.h"
#include "shard/wire.h"
#include "util/failpoint.h"
#include "util/json.h"

namespace dgnn::shard {
namespace {

using util::JsonObject;
using util::JsonValue;
using util::Status;
using util::StatusOr;

using Clock = std::chrono::steady_clock;

int64_t RemainMs(TimePoint deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             deadline - Clock::now())
      .count();
}

void BumpTelemetry(const char* name) {
  if (telemetry::Enabled()) telemetry::GetCounter(name)->Add(1);
}

// One shard's parsed response to a scatter/gather partial.
struct PartialResult {
  bool ok = false;
  bool degraded = false;
  int64_t version = 0;
  float score = 0.0f;
  std::string error;
  std::vector<serve::ScoredItem> items;
};

bool ParsePartial(const std::string& line, PartialResult* p) {
  auto parsed = util::ParseJson(line);
  if (!parsed.ok()) return false;
  const JsonValue& v = parsed.value();
  p->ok = v.BoolOr("ok", false);
  p->error = v.StringOr("error", "");
  p->degraded = v.BoolOr("degraded", false);
  p->version = static_cast<int64_t>(v.NumberOr("snapshot_version", 0));
  p->score = static_cast<float>(v.NumberOr("score", 0.0));
  const JsonValue* items = v.Find("items");
  if (items != nullptr && !ParseItems(items, &p->items)) return false;
  return true;
}

void SortUniqueShards(std::vector<int32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

// RAII in-flight op accounting: admission check against max_inflight and
// the drain barrier's op count, in one critical section.
class Router::OpGuard {
 public:
  explicit OpGuard(Router* r) : r_(r) {
    std::lock_guard<std::mutex> lock(r_->drain_mu_);
    if (r_->config_.max_inflight > 0 &&
        r_->inflight_ops_ >= r_->config_.max_inflight) {
      shed_ = true;
      return;
    }
    ++r_->inflight_ops_;
    admitted_ = true;
  }
  ~OpGuard() {
    if (!admitted_) return;
    {
      std::lock_guard<std::mutex> lock(r_->drain_mu_);
      --r_->inflight_ops_;
    }
    r_->drain_cv_.notify_all();
  }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;
  bool shed() const { return shed_; }

 private:
  Router* r_;
  bool admitted_ = false;
  bool shed_ = false;
};

Router::Router(RouterConfig config) : config_(std::move(config)) {}

Router::~Router() { Stop(); }

void Router::IncAttempts() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  ++inflight_attempts_;
}

void Router::DecAttempts() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --inflight_attempts_;
  }
  drain_cv_.notify_all();
}

TimePoint Router::DeadlineFor(int64_t deadline_ms) const {
  int64_t ms = deadline_ms > 0   ? deadline_ms
               : deadline_ms < 0 ? 0
                                 : config_.default_deadline_ms;
  // "No deadline" is still bounded (an hour): the no-hang guarantee
  // holds even for clients that opt out of deadlines.
  if (ms <= 0) ms = 3600 * 1000;
  return Clock::now() + std::chrono::milliseconds(ms);
}

StatusOr<std::unique_ptr<ShardConn>> Router::GetConn(ShardEntry& e) {
  {
    std::lock_guard<std::mutex> lock(e.pool_mu);
    if (!e.pool.empty()) {
      auto conn = std::move(e.pool.back());
      e.pool.pop_back();
      return conn;
    }
  }
  return ShardConn::Connect(e.path, config_.connect_timeout_ms);
}

void Router::PutConn(ShardEntry& e, std::unique_ptr<ShardConn> conn) {
  std::lock_guard<std::mutex> lock(e.pool_mu);
  if (e.pool.size() < 8) e.pool.push_back(std::move(conn));
}

StatusOr<std::string> Router::AttemptOnce(ShardEntry& e,
                                          const std::string& line,
                                          TimePoint deadline, bool probe) {
  if (!probe) {
    e.requests.fetch_add(1, std::memory_order_relaxed);
    if (failpoint::Enabled()) {
      Status st = failpoint::Check("shard.dispatch");
      if (!st.ok()) {
        e.failures.fetch_add(1, std::memory_order_relaxed);
        e.health.RecordOutcome(false);
        return st;
      }
    }
  }
  const auto t0 = Clock::now();
  auto conn_or = GetConn(e);
  if (!conn_or.ok()) {
    if (!probe) {
      e.failures.fetch_add(1, std::memory_order_relaxed);
      e.health.RecordOutcome(false);
    }
    return conn_or.status();
  }
  std::unique_ptr<ShardConn> conn = std::move(conn_or).value();
  auto r = conn->Call(line, deadline);
  if (r.ok()) {
    // A failed Call leaves the connection dead or desynced — only a
    // clean round-trip returns it to the pool.
    PutConn(e, std::move(conn));
    if (!probe) {
      e.ok.fetch_add(1, std::memory_order_relaxed);
      e.health.RecordOutcome(true);
      e.latency.Record(
          std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return r;
  }
  if (!probe) {
    e.failures.fetch_add(1, std::memory_order_relaxed);
    e.health.RecordOutcome(false);
  }
  return r.status();
}

namespace {
struct HedgeSlot {
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  bool success = false;
  std::string result;
  Status error = Status::Ok();
};
}  // namespace

StatusOr<std::string> Router::HedgedAttempt(ShardEntry& e,
                                            const std::string& line,
                                            TimePoint deadline) {
  auto slot = std::make_shared<HedgeSlot>();
  auto spawn = [this, &e, line, deadline, slot] {
    IncAttempts();
    std::thread([this, &e, line, deadline, slot] {
      auto r = AttemptOnce(e, line, deadline, /*probe=*/false);
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        ++slot->done;
        if (r.ok()) {
          if (!slot->success) {
            slot->success = true;
            slot->result = std::move(r).value();
          }
        } else if (slot->error.ok()) {
          slot->error = r.status();
        }
      }
      slot->cv.notify_all();
      DecAttempts();
    }).detach();
  };

  spawn();
  int launched = 1;
  std::unique_lock<std::mutex> lock(slot->mu);
  const TimePoint hedge_at =
      Clock::now() + std::chrono::milliseconds(config_.hedge_ms);
  slot->cv.wait_until(lock, std::min(deadline, hedge_at), [&] {
    return slot->success || slot->done >= launched;
  });
  if (!slot->success && slot->done == 0 && Clock::now() < deadline) {
    // The primary is a straggler: race a second attempt on a fresh
    // connection, first success wins.
    n_hedges_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.hedges");
    launched = 2;
    lock.unlock();
    spawn();
    lock.lock();
  }
  // Attempts self-bound on `deadline`; the slack covers their teardown.
  slot->cv.wait_until(lock, deadline + std::chrono::milliseconds(250),
                      [&] { return slot->success || slot->done >= launched; });
  if (slot->success) return slot->result;
  if (slot->done >= launched && !slot->error.ok()) return slot->error;
  return Status::DeadlineExceeded("hedged shard dispatch");
}

StatusOr<std::string> Router::CallShard(int shard, const std::string& line,
                                        TimePoint deadline) {
  ShardEntry& e = *shards_[static_cast<size_t>(shard)];
  if (e.health.state() == HealthState::kDown) {
    // Fail fast; the probe thread keeps watching for recovery.
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " is down");
  }
  const int attempts = 1 + std::max(0, config_.retries);
  Status last = Status::Internal("no attempt made");
  int backoff_ms = 1;
  for (int a = 0; a < attempts; ++a) {
    const TimePoint att_deadline = std::min(
        deadline,
        Clock::now() + std::chrono::milliseconds(config_.shard_timeout_ms));
    auto r = config_.hedge_ms > 0
                 ? HedgedAttempt(e, line, att_deadline)
                 : AttemptOnce(e, line, att_deadline, /*probe=*/false);
    if (r.ok()) return r;
    last = r.status();
    // Only transient transport errors retry; a passed deadline means the
    // budget is spent no matter what the shard would have said.
    if (last.code() != util::StatusCode::kInternal) break;
    if (a + 1 >= attempts) break;
    if (Clock::now() + std::chrono::milliseconds(backoff_ms) >= deadline) {
      break;
    }
    n_retries_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.retries");
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 16);
  }
  return last;
}

std::vector<StatusOr<std::string>> Router::Scatter(const std::string& line,
                                                   TimePoint deadline) {
  const size_t n = shards_.size();
  std::vector<StatusOr<std::string>> out(
      n, StatusOr<std::string>(Status::Internal("not dispatched")));
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([this, i, &line, deadline, &out] {
      out[i] = CallShard(static_cast<int>(i), line, deadline);
    });
  }
  for (auto& t : threads) t.join();
  return out;
}

util::Status Router::ProbeShardOnce(ShardEntry& e, ShardIdentity* id_out) {
  if (failpoint::Enabled()) {
    Status st = failpoint::Check("shard.probe");
    if (!st.ok()) return st;
  }
  const TimePoint deadline =
      Clock::now() + std::chrono::milliseconds(config_.probe_timeout_ms);
  auto r = AttemptOnce(e, "{\"op\":\"probe\"}", deadline, /*probe=*/true);
  if (!r.ok()) return r.status();
  auto parsed = util::ParseJson(r.value());
  if (!parsed.ok()) {
    return Status::Internal("probe response is not JSON: " +
                            parsed.status().message());
  }
  const JsonValue& v = parsed.value();
  if (!v.BoolOr("ok", false)) {
    return Status::Internal("probe failed: " + v.StringOr("error", "?"));
  }
  e.snapshot_version.store(
      static_cast<int64_t>(v.NumberOr("snapshot_version", 0)),
      std::memory_order_relaxed);
  e.queue_depth.store(static_cast<int64_t>(v.NumberOr("queue_depth", 0)),
                      std::memory_order_relaxed);
  // The worker's own admission-control counter (PR-5 overload signal):
  // sheds since the last probe mark the shard overloaded for this
  // interval.
  const int64_t shed = static_cast<int64_t>(v.NumberOr("shed_requests", 0));
  e.overloaded.store(e.last_shed >= 0 && shed > e.last_shed,
                     std::memory_order_relaxed);
  e.last_shed = shed;
  if (id_out != nullptr) {
    id_out->shard_index = static_cast<int32_t>(v.NumberOr("shard_index", 0));
    id_out->num_shards = static_cast<int32_t>(v.NumberOr("num_shards", 0));
    id_out->item_begin = static_cast<int64_t>(v.NumberOr("item_begin", 0));
    id_out->item_end = static_cast<int64_t>(v.NumberOr("item_end", 0));
    id_out->num_users = static_cast<int64_t>(v.NumberOr("num_users", 0));
    id_out->num_items = static_cast<int64_t>(v.NumberOr("num_items", 0));
    id_out->dim = static_cast<int64_t>(v.NumberOr("dim", 0));
    id_out->hash_seed = std::strtoull(
        v.StringOr("hash_seed", "0").c_str(), nullptr, 10);
  }
  return Status::Ok();
}

void Router::TickWindows() {
  const auto now = Clock::now();
  if (last_tick_ == Clock::time_point{}) {
    last_tick_ = now;
    return;
  }
  const double secs = std::chrono::duration<double>(now - last_tick_).count();
  if (secs < 1.0) return;
  last_tick_ = now;
  for (auto& ep : shards_) {
    ShardEntry& e = *ep;
    telemetry::WindowedStats::Sample s;
    s.seconds = secs;
    const int64_t req = e.requests.load(std::memory_order_relaxed);
    const int64_t ok = e.ok.load(std::memory_order_relaxed);
    s.requests = req - e.win_requests;
    s.ok = ok - e.win_ok;
    s.failed = s.requests - s.ok;
    e.win_requests = req;
    e.win_ok = ok;
    s.latency = e.latency.SnapshotDelta(&e.win_latency);
    s.queue_depth = e.queue_depth.load(std::memory_order_relaxed);
    e.windows->Push(s);
  }
}

void Router::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mu_);
  while (!probe_stop_.load(std::memory_order_acquire)) {
    probe_cv_.wait_for(
        lock, std::chrono::milliseconds(std::max(config_.probe_interval_ms, 1)),
        [this] { return probe_stop_.load(std::memory_order_acquire); });
    if (probe_stop_.load(std::memory_order_acquire)) return;
    lock.unlock();
    for (auto& e : shards_) {
      const Status st = ProbeShardOnce(*e, nullptr);
      e->health.RecordProbe(st.ok());
    }
    TickWindows();
    lock.lock();
  }
}

util::Status Router::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("router already started");
  }
  if (config_.shard_paths.empty()) {
    return Status::InvalidArgument("router needs at least one shard socket");
  }
  shards_.clear();
  for (const std::string& path : config_.shard_paths) {
    auto e = std::make_unique<ShardEntry>(config_.health);
    e->path = path;
    e->last_shed = -1;
    e->windows = std::make_unique<telemetry::WindowedStats>(
        telemetry::WindowedStats::Config{});
    shards_.push_back(std::move(e));
  }
  const size_t n = shards_.size();
  std::vector<ShardIdentity> ids(n);
  for (size_t i = 0; i < n; ++i) {
    Status st = Status::Ok();
    const int attempts = 2 + std::max(0, config_.retries);
    for (int a = 0; a < attempts; ++a) {
      st = ProbeShardOnce(*shards_[i], &ids[i]);
      if (st.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!st.ok()) {
      return Status::Internal("initial probe of shard " + std::to_string(i) +
                              " (" + shards_[i]->path +
                              ") failed: " + st.ToString());
    }
    shards_[i]->health.RecordProbe(true);
  }

  // Fleet agreement: one manifest, or refuse to start.
  const ShardIdentity& first = ids[0];
  if (n == 1 && first.num_shards == 0) {
    // A single unsharded worker behind the router (degenerate fleet).
    ids[0].item_begin = 0;
    ids[0].item_end = first.num_items;
    shards_[0]->id = ids[0];
    ring_ = serve::ShardRing(1, first.hash_seed);
  } else {
    if (first.num_shards != static_cast<int32_t>(n)) {
      return Status::FailedPrecondition(
          "router has " + std::to_string(n) +
          " shard sockets but shard 0 reports num_shards=" +
          std::to_string(first.num_shards));
    }
    for (size_t i = 0; i < n; ++i) {
      const ShardIdentity& id = ids[i];
      if (id.num_shards != first.num_shards ||
          id.hash_seed != first.hash_seed ||
          id.num_users != first.num_users ||
          id.num_items != first.num_items || id.dim != first.dim) {
        return Status::FailedPrecondition(
            "shard " + std::to_string(i) +
            " disagrees with shard 0 on the manifest (num_shards/seed/"
            "catalog shape)");
      }
      if (id.shard_index != static_cast<int32_t>(i)) {
        return Status::FailedPrecondition(
            "socket position " + std::to_string(i) + " is shard " +
            std::to_string(id.shard_index) +
            " — shard sockets must be listed in shard-index order");
      }
      int64_t begin = 0, end = 0;
      serve::ShardItemRange(first.num_items, first.num_shards,
                            static_cast<int32_t>(i), &begin, &end);
      if (id.item_begin != begin || id.item_end != end) {
        return Status::FailedPrecondition(
            "shard " + std::to_string(i) + " serves items [" +
            std::to_string(id.item_begin) + ", " +
            std::to_string(id.item_end) + "), expected the canonical [" +
            std::to_string(begin) + ", " + std::to_string(end) + ")");
      }
      shards_[i]->id = id;
    }
    ring_ = serve::ShardRing(first.num_shards, first.hash_seed);
  }
  num_users_ = first.num_users;
  num_items_ = first.num_items;
  dim_ = first.dim;

  probe_stop_.store(false, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  probe_thread_ = std::thread(&Router::ProbeLoop, this);
  return Status::Ok();
}

void Router::BeginDrain() {
  probe_stop_.store(true, std::memory_order_release);
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return inflight_ops_ == 0 && inflight_attempts_ == 0;
  });
}

void Router::Stop() {
  if (!started_.load(std::memory_order_acquire)) {
    // Never started (or already stopped) — still join a probe thread if
    // Start() failed halfway (it never starts one, but stay defensive).
    probe_stop_.store(true, std::memory_order_release);
    if (probe_thread_.joinable()) probe_thread_.join();
    return;
  }
  BeginDrain();
  started_.store(false, std::memory_order_release);
  for (auto& e : shards_) {
    std::lock_guard<std::mutex> lock(e->pool_mu);
    e->pool.clear();
  }
}

bool Router::FetchUserVector(int32_t user, TimePoint deadline,
                             std::vector<float>* vec, float* norm,
                             std::vector<int32_t>* missing, bool* failover) {
  *failover = false;
  if (user < 0 || user >= num_users_) return false;  // unknown fleet-wide
  const int32_t owner = ring_.Owner(user);
  JsonObject line;
  line.Set("op", "user_vector")
      .Set("user", static_cast<int64_t>(user))
      .Set("deadline_ms", std::max<int64_t>(RemainMs(deadline), 1));
  auto r = CallShard(owner, line.Build(), deadline);
  const auto fail = [&] {
    missing->push_back(owner);
    *failover = true;
    return false;
  };
  if (!r.ok()) return fail();
  auto parsed = util::ParseJson(r.value());
  if (!parsed.ok()) return fail();
  const JsonValue& v = parsed.value();
  if (!v.BoolOr("ok", false)) return fail();
  // The owner answered and says the user is unknown — that is the same
  // popularity fallback a single process takes, not a failover.
  if (v.BoolOr("degraded", false)) return false;
  if (!ParseFloatArray(v.Find("vector"), vec) || vec->empty()) return fail();
  *norm = static_cast<float>(v.NumberOr("norm", 0.0));
  return true;
}

serve::Response Router::TopK(int32_t user, int k, int64_t deadline_ms) {
  serve::Response resp;
  resp.trace_id = n_requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  OpGuard guard(this);
  if (guard.shed()) {
    n_shed_.fetch_add(1, std::memory_order_relaxed);
    resp.error = "overloaded";
    return resp;
  }
  if (!started_.load(std::memory_order_acquire)) {
    resp.error = "router not started";
    return resp;
  }
  if (k <= 0) {
    resp.error = "k must be positive";
    return resp;
  }
  const TimePoint deadline = DeadlineFor(deadline_ms);

  std::vector<float> query;
  float norm = 0.0f;
  bool failover = false;
  std::vector<int32_t> missing;
  const bool have_vec =
      FetchUserVector(user, deadline, &query, &norm, &missing, &failover);
  if (failover) {
    n_failovers_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.failovers");
  }

  const int64_t rem = RemainMs(deadline);
  if (rem <= 0) {
    resp.error = "deadline exceeded";
    return resp;
  }
  JsonObject line;
  line.Set("op", "topk_partial")
      .Set("k", static_cast<int64_t>(k))
      .Set("deadline_ms", rem);
  if (have_vec) {
    line.Set("user", static_cast<int64_t>(user))
        .SetRaw("query", FloatsJson(query));
  } else {
    line.Set("popularity", true);
    resp.degraded = true;
  }
  auto raw = Scatter(line.Build(), deadline);

  std::vector<serve::ScoredItem> all;
  int64_t version = 0;
  int successes = 0;
  std::string last_err;
  for (size_t i = 0; i < raw.size(); ++i) {
    PartialResult p;
    if (!raw[i].ok()) {
      last_err = raw[i].status().ToString();
      missing.push_back(static_cast<int32_t>(i));
      resp.degraded = true;
      continue;
    }
    if (!ParsePartial(raw[i].value(), &p) || !p.ok) {
      last_err = p.error.empty() ? "malformed shard response" : p.error;
      missing.push_back(static_cast<int32_t>(i));
      resp.degraded = true;
      continue;
    }
    ++successes;
    version = std::max(version, p.version);
    all.insert(all.end(), p.items.begin(), p.items.end());
  }
  if (successes == 0) {
    resp.error = "all shards unavailable: " + last_err;
    return resp;
  }
  if (failpoint::Enabled()) {
    Status st = failpoint::Check("shard.merge");
    if (!st.ok()) {
      resp.error = st.ToString();
      return resp;
    }
  }
  // Per-shard top-ks each cover their slice, so the union contains every
  // global top-k candidate; SelectTopK applies the same (score desc, id
  // asc) total order every scoring path uses — bit-identical merge.
  serve::SelectTopK(all, k);
  resp.items = std::move(all);
  SortUniqueShards(&missing);
  resp.missing_shards = std::move(missing);
  if (!resp.missing_shards.empty()) resp.degraded = true;
  resp.snapshot_version = version;
  resp.ok = true;
  if (resp.degraded) {
    n_degraded_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.degraded_responses");
  }
  return resp;
}

serve::Response Router::Score(int32_t user, int32_t item,
                              int64_t deadline_ms) {
  serve::Response resp;
  resp.trace_id = n_requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  OpGuard guard(this);
  if (guard.shed()) {
    n_shed_.fetch_add(1, std::memory_order_relaxed);
    resp.error = "overloaded";
    return resp;
  }
  if (!started_.load(std::memory_order_acquire)) {
    resp.error = "router not started";
    return resp;
  }
  const TimePoint deadline = DeadlineFor(deadline_ms);

  int64_t max_version = 0;
  for (const auto& e : shards_) {
    max_version = std::max(
        max_version, e->snapshot_version.load(std::memory_order_relaxed));
  }
  const auto degrade = [&](std::vector<int32_t> missing) {
    resp.ok = true;
    resp.degraded = true;
    resp.score = 0.0f;
    resp.snapshot_version = max_version;
    resp.missing_shards = std::move(missing);
    n_degraded_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.degraded_responses");
    return resp;
  };

  // Unknown user or item: the same neutral degraded score the
  // single-process engine returns.
  if (user < 0 || user >= num_users_ || item < 0 || item >= num_items_) {
    return degrade({});
  }
  std::vector<float> query;
  float norm = 0.0f;
  bool failover = false;
  std::vector<int32_t> missing;
  if (!FetchUserVector(user, deadline, &query, &norm, &missing, &failover)) {
    if (failover) {
      n_failovers_.fetch_add(1, std::memory_order_relaxed);
      BumpTelemetry("serve.shard.failovers");
    }
    return degrade(std::move(missing));
  }

  int item_shard = -1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (item >= shards_[i]->id.item_begin &&
        item < shards_[i]->id.item_end) {
      item_shard = static_cast<int>(i);
      break;
    }
  }
  if (item_shard < 0) return degrade({});
  JsonObject line;
  line.Set("op", "score_item")
      .Set("item", static_cast<int64_t>(item))
      .Set("deadline_ms", std::max<int64_t>(RemainMs(deadline), 1))
      .SetRaw("query", FloatsJson(query));
  auto r = CallShard(item_shard, line.Build(), deadline);
  PartialResult p;
  if (!r.ok() || !ParsePartial(r.value(), &p) || !p.ok) {
    return degrade({static_cast<int32_t>(item_shard)});
  }
  resp.ok = true;
  resp.score = p.score;
  resp.degraded = p.degraded;
  resp.snapshot_version = p.version;
  if (resp.degraded) {
    n_degraded_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.degraded_responses");
  }
  return resp;
}

serve::Response Router::SimilarUsers(int32_t user, int k,
                                     int64_t deadline_ms) {
  serve::Response resp;
  resp.trace_id = n_requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  OpGuard guard(this);
  if (guard.shed()) {
    n_shed_.fetch_add(1, std::memory_order_relaxed);
    resp.error = "overloaded";
    return resp;
  }
  if (!started_.load(std::memory_order_acquire)) {
    resp.error = "router not started";
    return resp;
  }
  if (k <= 0) {
    resp.error = "k must be positive";
    return resp;
  }
  const TimePoint deadline = DeadlineFor(deadline_ms);

  int64_t max_version = 0;
  for (const auto& e : shards_) {
    max_version = std::max(
        max_version, e->snapshot_version.load(std::memory_order_relaxed));
  }
  std::vector<float> query;
  float norm = 0.0f;
  bool failover = false;
  std::vector<int32_t> missing;
  if (!FetchUserVector(user, deadline, &query, &norm, &missing, &failover)) {
    // Without the query vector there is nothing to rank against —
    // degraded empty answer (single-process parity for unknown users;
    // attributed to the owner when it was a failover).
    if (failover) {
      n_failovers_.fetch_add(1, std::memory_order_relaxed);
      BumpTelemetry("serve.shard.failovers");
    }
    resp.ok = true;
    resp.degraded = true;
    resp.snapshot_version = max_version;
    SortUniqueShards(&missing);
    resp.missing_shards = std::move(missing);
    n_degraded_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.degraded_responses");
    return resp;
  }

  const int64_t rem = RemainMs(deadline);
  if (rem <= 0) {
    resp.error = "deadline exceeded";
    return resp;
  }
  JsonObject line;
  line.Set("op", "similar_partial")
      .Set("user", static_cast<int64_t>(user))
      .Set("k", static_cast<int64_t>(k))
      .Set("norm", static_cast<double>(norm))
      .Set("deadline_ms", rem)
      .SetRaw("query", FloatsJson(query));
  auto raw = Scatter(line.Build(), deadline);

  std::vector<serve::ScoredItem> all;
  int64_t version = 0;
  int successes = 0;
  std::string last_err;
  for (size_t i = 0; i < raw.size(); ++i) {
    PartialResult p;
    if (!raw[i].ok()) {
      last_err = raw[i].status().ToString();
      missing.push_back(static_cast<int32_t>(i));
      resp.degraded = true;
      continue;
    }
    if (!ParsePartial(raw[i].value(), &p) || !p.ok) {
      last_err = p.error.empty() ? "malformed shard response" : p.error;
      missing.push_back(static_cast<int32_t>(i));
      resp.degraded = true;
      continue;
    }
    ++successes;
    version = std::max(version, p.version);
    all.insert(all.end(), p.items.begin(), p.items.end());
  }
  if (successes == 0) {
    resp.error = "all shards unavailable: " + last_err;
    return resp;
  }
  if (failpoint::Enabled()) {
    Status st = failpoint::Check("shard.merge");
    if (!st.ok()) {
      resp.error = st.ToString();
      return resp;
    }
  }
  serve::SelectTopK(all, k);
  resp.items = std::move(all);
  SortUniqueShards(&missing);
  resp.missing_shards = std::move(missing);
  if (!resp.missing_shards.empty()) resp.degraded = true;
  resp.snapshot_version = version;
  resp.ok = true;
  if (resp.degraded) {
    n_degraded_.fetch_add(1, std::memory_order_relaxed);
    BumpTelemetry("serve.shard.degraded_responses");
  }
  return resp;
}

util::StatusOr<int64_t> Router::CoordinatedSwap(const std::string& prefix) {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("router not started");
  }
  OpGuard guard(this);
  if (guard.shed()) return Status::FailedPrecondition("overloaded");
  const std::string token =
      "swap-" + std::to_string(swap_seq_.fetch_add(1) + 1);
  JsonObject prep;
  prep.Set("op", "swap_prepare").Set("prefix", prefix).Set("token", token);
  const std::string prep_line = prep.Build();
  JsonObject abort;
  abort.Set("op", "swap_abort").Set("token", token);
  const std::string abort_line = abort.Build();

  const auto swap_deadline = [this] {
    return Clock::now() +
           std::chrono::milliseconds(std::max(config_.swap_timeout_ms, 1));
  };
  const auto abort_all = [&] {
    // Best effort: a shard that cannot be reached has nothing staged to
    // worry about (its prepare failed or it is down).
    for (size_t i = 0; i < shards_.size(); ++i) {
      (void)CallShard(static_cast<int>(i), abort_line, swap_deadline());
    }
  };

  // Phase 1: prepare everywhere; any failure aborts everywhere and no
  // worker changes snapshots.
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string err;
    Status fp = Status::Ok();
    if (failpoint::Enabled()) fp = failpoint::Check("shard.swap");
    if (!fp.ok()) {
      err = fp.ToString();
    } else {
      auto r = CallShard(static_cast<int>(i), prep_line, swap_deadline());
      if (!r.ok()) {
        err = r.status().ToString();
      } else {
        auto parsed = util::ParseJson(r.value());
        if (!parsed.ok()) {
          err = "malformed prepare response";
        } else if (!parsed.value().BoolOr("ok", false)) {
          err = parsed.value().StringOr("error", "prepare refused");
        }
      }
    }
    if (!err.empty()) {
      abort_all();
      return Status::FailedPrecondition(
          "swap prepare failed on shard " + std::to_string(i) + " (" +
          shards_[i]->path + "): " + err + " — aborted on all shards");
    }
  }

  // Phase 2: commit everywhere. A commit failure is reported (the fleet
  // may serve mixed versions until the next successful swap), never
  // silently swallowed.
  JsonObject commit;
  commit.Set("op", "swap_commit").Set("token", token);
  const std::string commit_line = commit.Build();
  int64_t version = 0;
  std::string commit_errs;
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto r = CallShard(static_cast<int>(i), commit_line, swap_deadline());
    std::string err;
    if (!r.ok()) {
      err = r.status().ToString();
    } else {
      auto parsed = util::ParseJson(r.value());
      if (!parsed.ok() || !parsed.value().BoolOr("ok", false)) {
        err = parsed.ok() ? parsed.value().StringOr("error", "commit refused")
                          : "malformed commit response";
      } else {
        version = std::max(
            version, static_cast<int64_t>(
                         parsed.value().NumberOr("snapshot_version", 0)));
      }
    }
    if (!err.empty()) {
      if (!commit_errs.empty()) commit_errs += "; ";
      commit_errs += "shard " + std::to_string(i) + ": " + err;
    }
  }
  if (!commit_errs.empty()) {
    return Status::Internal(
        "swap commit failed (fleet may serve mixed snapshot versions): " +
        commit_errs);
  }
  return version;
}

RouterCounters Router::counters() const {
  RouterCounters c;
  c.requests = n_requests_.load(std::memory_order_relaxed);
  c.retries = n_retries_.load(std::memory_order_relaxed);
  c.hedges = n_hedges_.load(std::memory_order_relaxed);
  c.failovers = n_failovers_.load(std::memory_order_relaxed);
  c.degraded_responses = n_degraded_.load(std::memory_order_relaxed);
  c.shed = n_shed_.load(std::memory_order_relaxed);
  return c;
}

std::vector<RouterShardStatus> Router::ShardStatuses() {
  std::vector<RouterShardStatus> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardEntry& e = *shards_[i];
    RouterShardStatus s;
    s.shard = static_cast<int>(i);
    s.path = e.path;
    s.state = e.health.state();
    s.failure_ewma = e.health.failure_ewma();
    s.overloaded = e.overloaded.load(std::memory_order_relaxed);
    s.snapshot_version = e.snapshot_version.load(std::memory_order_relaxed);
    s.queue_depth = e.queue_depth.load(std::memory_order_relaxed);
    s.requests = e.requests.load(std::memory_order_relaxed);
    s.failures = e.failures.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

std::string Router::StatsJson() {
  const RouterCounters c = counters();
  JsonObject o;
  o.Set("ok", true)
      .Set("op", "stats")
      .Set("bench", "dgnn_router")
      .Set("requests", c.requests)
      .Set("serve.shard.retries", c.retries)
      .Set("serve.shard.hedges", c.hedges)
      .Set("serve.shard.failovers", c.failovers)
      .Set("serve.shard.degraded_responses", c.degraded_responses)
      .Set("shed", c.shed)
      .Set("num_shards", static_cast<int64_t>(shards_.size()))
      .Set("num_users", num_users_)
      .Set("num_items", num_items_);
  std::string shards = "[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardEntry& e = *shards_[i];
    if (i > 0) shards += ",";
    JsonObject s;
    s.Set("shard", static_cast<int64_t>(i))
        .Set("path", e.path)
        .Set("state", HealthStateName(e.health.state()))
        .Set("failure_ewma", e.health.failure_ewma())
        .Set("overloaded", e.overloaded.load(std::memory_order_relaxed))
        .Set("snapshot_version",
             e.snapshot_version.load(std::memory_order_relaxed))
        .Set("queue_depth", e.queue_depth.load(std::memory_order_relaxed))
        .Set("requests", e.requests.load(std::memory_order_relaxed))
        .Set("failures", e.failures.load(std::memory_order_relaxed))
        .SetRaw("windows",
                "{\"1s\":" +
                    serve::observe::WindowJson(e.windows->Aggregate(1)) +
                    ",\"10s\":" +
                    serve::observe::WindowJson(e.windows->Aggregate(10)) +
                    ",\"60s\":" +
                    serve::observe::WindowJson(e.windows->Aggregate(60)) +
                    "}");
    shards += s.Build();
  }
  shards += "]";
  o.SetRaw("shards", shards);
  return o.Build();
}

}  // namespace dgnn::shard
