// Snapshot partitioning: slices one full (unsharded, fp32, unindexed)
// snapshot into N shard snapshots carrying the section-10 manifest.
//
// Assignment policy (also enforced by the snapshot validator):
//  - users: consistent hashing over user id (serve::ShardRing) — the
//    shard keeps only its owned users' embedding rows, ascending by
//    global id;
//  - items: contiguous balanced ranges (serve::ShardItemRange) — the
//    shard keeps item rows [begin, end), plus the matching slice of the
//    popularity counts;
//  - seen lists: all global users (exclusion filters must apply on every
//    item shard, wherever the user lives), restricted to the shard's
//    item range, ids kept GLOBAL;
//  - social lists: emptied — sharded serving runs without serve-time
//    social recalibration (the default social_alpha=0 path, which is
//    also the bit-parity path).

#ifndef DGNN_SHARD_PARTITION_H_
#define DGNN_SHARD_PARTITION_H_

#include <cstdint>
#include <string>

#include "serve/snapshot.h"
#include "util/status.h"

namespace dgnn::shard {

// Builds shard `shard_index` of `num_shards` from a full snapshot.
// Fails on quantized / indexed / already-sharded inputs (sharding is
// fp32-dense only; see the manifest comment in serve/snapshot.h).
util::StatusOr<serve::Snapshot> BuildShardSnapshot(
    const serve::Snapshot& full, int32_t shard_index, int32_t num_shards,
    uint64_t hash_seed);

// Writes all N slices next to `base_path` using the
// serve::ShardSnapshotPath naming convention ("<base>.shard<i>of<N>").
util::Status WriteShardSnapshots(const serve::Snapshot& full,
                                 const std::string& base_path,
                                 int32_t num_shards, uint64_t hash_seed);

}  // namespace dgnn::shard

#endif  // DGNN_SHARD_PARTITION_H_
