// JSON wire helpers shared by every process on the shard protocol —
// dgnn_serve (shard worker side), dgnn_router, and the tests.
//
// Bit-identity across the wire is the whole point: floats are widened to
// double and printed with util::JsonDouble (%.17g), which round-trips
// every float value exactly, and parsed numbers are narrowed back with a
// plain static_cast — so a score or query vector that crosses a process
// boundary is the SAME float on both sides, and the router's merged
// top-k can be memcmp-identical to a single-process scan.

#ifndef DGNN_SHARD_WIRE_H_
#define DGNN_SHARD_WIRE_H_

#include <string>
#include <vector>

#include "serve/ranking.h"
#include "util/json.h"

namespace dgnn::shard {

// "[v0,v1,...]" with exact float round-trip.
inline std::string FloatsJson(const std::vector<float>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += util::JsonDouble(static_cast<double>(v[i]));
  }
  out += "]";
  return out;
}

// Parses a JSON number array into floats; false on missing/non-array/
// non-number input (empty arrays parse fine).
inline bool ParseFloatArray(const util::JsonValue* v,
                            std::vector<float>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->array.size());
  for (const util::JsonValue& e : v->array) {
    if (!e.is_number()) return false;
    out->push_back(static_cast<float>(e.number));
  }
  return true;
}

// '[{"item":N,"score":S},...]' — the exact shape dgnn_serve has always
// printed for topk/similar_users, reused for partial responses.
inline std::string ItemsJson(const std::vector<serve::ScoredItem>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"item\":" + std::to_string(items[i].item) +
           ",\"score\":" +
           util::JsonDouble(static_cast<double>(items[i].score)) + "}";
  }
  out += "]";
  return out;
}

inline bool ParseItems(const util::JsonValue* v,
                       std::vector<serve::ScoredItem>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->array.size());
  for (const util::JsonValue& e : v->array) {
    if (!e.is_object()) return false;
    const util::JsonValue* item = e.Find("item");
    const util::JsonValue* score = e.Find("score");
    if (item == nullptr || !item->is_number() || score == nullptr ||
        !score->is_number()) {
      return false;
    }
    out->push_back({static_cast<int32_t>(item->number),
                    static_cast<float>(score->number)});
  }
  return true;
}

}  // namespace dgnn::shard

#endif  // DGNN_SHARD_WIRE_H_
