// Open-loop trace replay against a ServingEngine, measured the
// coordinated-omission-safe way.
//
// A closed-loop client (bench_serve_load's default mode) waits for each
// response before sending the next request, so when the server stalls
// the client *stops offering load* — the stall keeps requests that would
// have arrived out of the latency sample entirely, and the reported
// percentiles can be off by orders of magnitude (Tene's "coordinated
// omission"). Real traffic does not coordinate: requests keep arriving
// on their own schedule whether or not the server is keeping up.
//
// ReplayTrace therefore:
//   * takes the arrival schedule from the trace, not from the engine's
//     responsiveness — a fixed worker pool dispatches record i on worker
//     i % workers, sleeping until each record's scheduled arrival;
//   * measures every latency from the SCHEDULED arrival time to
//     completion, so time a request spent waiting behind a backed-up
//     worker counts against the engine, exactly as a queueing client
//     would experience it;
//   * reports backlog honestly: late_dispatches counts requests a worker
//     could not send on time (dispatch > 1 ms after schedule) and
//     max_lateness_ms the worst such lag. High lateness with low
//     engine-side latency means the replay harness itself saturated —
//     add workers or lower target_qps; the quantiles remain honest
//     (lateness is inside them) either way.
//
// Quantiles are EXACT (sorted per-request samples, nearest-rank), not
// histogram-bucket approximations — trajectory points published to
// BENCH_serve.json should not move when telemetry bucket boundaries do.
// Outcomes are split by the engine's error contract: ok / degraded /
// shed ("overloaded") / expired ("deadline exceeded") / failed (other).

#ifndef DGNN_SERVE_REPLAY_H_
#define DGNN_SERVE_REPLAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "serve/engine.h"
#include "serve/trace.h"

namespace dgnn::serve {

struct ReplayConfig {
  // Dispatch threads. The schedule does not change with the worker
  // count — only the harness's ability to keep up with it does.
  int workers = 4;
};

struct ReplayResult {
  int64_t requests = 0;
  // First scheduled arrival to last completion.
  double seconds = 0.0;
  // Rate the trace asked for (requests / trace span) vs the rate of
  // successful responses actually delivered.
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  // Scheduled-arrival-to-completion latency, exact nearest-rank.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  // Outcome split (requests = ok + shed + expired + failed; degraded is
  // a subset of ok).
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t shed = 0;      // engine error "overloaded"
  int64_t expired = 0;   // engine error "deadline exceeded"
  int64_t failed = 0;    // any other ok=false response
  // Harness backlog accounting (see header comment).
  int64_t late_dispatches = 0;
  double max_lateness_ms = 0.0;
  // Distinct Response::trace_id values observed across all responses
  // (shed included — ids are assigned at admission). Equals `requests`
  // when per-request tracing is sound; a smaller value means ids were
  // reused or lost, e.g. across a hot swap.
  int64_t distinct_trace_ids = 0;
  // ru_maxrss at the end of the replay, in bytes (process-wide peak).
  int64_t peak_rss_bytes = 0;
};

// Replays `records` (arrival-sorted, as ReadTrace guarantees) against
// the engine. Blocking: returns when every record has completed.
ReplayResult ReplayTrace(ServingEngine& engine,
                         const std::vector<TraceRecord>& records,
                         const ReplayConfig& config);

// Handler-generic overload: any Request -> Response function (must be
// thread-safe — up to `workers` concurrent calls) can sit behind the
// same coordinated-omission-safe schedule. The sharded router replays
// traces through this, classifying outcomes by the identical error
// contract ("overloaded" / "deadline exceeded" / other).
using ReplayHandler = std::function<Response(const Request&)>;
ReplayResult ReplayTrace(const ReplayHandler& handler,
                         const std::vector<TraceRecord>& records,
                         const ReplayConfig& config);

// Process-wide peak resident set size in bytes (getrusage ru_maxrss);
// exposed for benches that report memory alongside latency.
int64_t PeakRssBytes();

}  // namespace dgnn::serve

#endif  // DGNN_SERVE_REPLAY_H_
