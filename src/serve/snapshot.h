// Embedding snapshot — the offline-artifact half of the serving split:
// everything the online ServingEngine needs to answer TopK / Score /
// SimilarUsers requests, exported once after training and loaded (or
// hot-swapped) by any number of serving processes.
//
// Contents: final user/item embeddings (fp32, or quantized int8/fp16
// sections that replace them), an optional IVF retrieval index over the
// items, per-user sorted seen-item lists (for exclusion), the social
// adjacency (for serve-time recalibration of user vectors), per-item
// train interaction counts (the popularity fallback for unknown/cold
// users), and a JSON metadata record.
//
// File format (little-endian), magic "DGNNSNP1":
//
//   magic (8 bytes)
//   uint32 section_count
//   per section:
//     uint32 section_id        (see kSection* below; duplicates rejected)
//     uint64 payload_bytes
//     payload
//   uint64 FNV-1a checksum of every byte above
//
// Durability / validation mirror ag::SaveParameters / LoadParameters:
//  - WriteSnapshot writes "<path>.tmp" and atomically rename(2)s it over
//    `path`, so a crash mid-export never destroys the previous snapshot.
//  - ReadSnapshot validates the ENTIRE file — magic, checksum, section
//    table (every required section exactly once, no unknown sections, no
//    trailing bytes), payload shapes, id ranges, sortedness — before
//    returning; a corrupt, truncated, or duplicate-section file yields an
//    error and never a half-built snapshot.

#ifndef DGNN_SERVE_SNAPSHOT_H_
#define DGNN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ag/tensor.h"
#include "index/ivf.h"
#include "quant/quant.h"
#include "util/status.h"

namespace dgnn::data {
struct Dataset;
}  // namespace dgnn::data
namespace dgnn::train {
class Recommender;
}  // namespace dgnn::train

namespace dgnn::serve {

struct SnapshotMeta {
  std::string model_name;
  std::string dataset_name;
  // Free-form producer tag (e.g. an export label); surfaced in serving
  // responses' provenance, never interpreted.
  std::string tag;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t embedding_dim = 0;
};

// Shard manifest (section 10): identifies a snapshot as one slice of an
// N-way sharded export. Users are assigned to shards by consistent
// hashing (ShardRing below), items by contiguous range. A sharded
// snapshot keeps the GLOBAL num_users/num_items in its meta; the user
// tensor holds only the owned users' rows (ascending global id) and the
// item tensor holds rows [item_begin, item_end). Seen lists stay
// globally indexed (one per global user) but are restricted to the
// shard's item range; social lists are present but empty (sharded
// serving runs without serve-time recalibration). Shard snapshots are
// always dense fp32 and never carry an IVF index — the bit-identical
// scatter/gather merge contract depends on exact full scans.
struct ShardInfo {
  int32_t num_shards = 0;  // 0 = unsharded snapshot (no manifest section)
  int32_t shard_index = 0;
  int64_t item_begin = 0;  // global item range [item_begin, item_end)
  int64_t item_end = 0;
  // Rows of the user tensor; must equal the ring-derived owned count.
  int64_t num_owned_users = 0;
  // Seed of the consistent-hash ring; identical across the fleet.
  uint64_t hash_seed = 0;

  bool empty() const { return num_shards == 0; }
};

// Consistent-hash ring mapping user ids to shard indices. Deterministic
// from (num_shards, seed) alone — every process that builds the ring
// with the manifest's parameters agrees on ownership without any stored
// assignment table. 64 virtual nodes per shard keep the split within a
// few percent of even.
class ShardRing {
 public:
  ShardRing() = default;
  ShardRing(int32_t num_shards, uint64_t seed);

  int32_t num_shards() const { return num_shards_; }
  // Owning shard of `user`, in [0, num_shards). num_shards == 1 maps
  // everything to shard 0.
  int32_t Owner(int32_t user) const;

 private:
  int32_t num_shards_ = 0;
  uint64_t seed_ = 0;
  std::vector<std::pair<uint64_t, int32_t>> points_;  // sorted by hash
};

// Global ids of the users `shard` owns, ascending — row r of a shard
// snapshot's user tensor is OwnedUsers(...)[r].
std::vector<int32_t> OwnedUsers(const ShardInfo& shard, int64_t num_users);

// Canonical contiguous item range of shard `shard_index`: balanced
// blocks covering [0, num_items) exactly once across num_shards shards.
void ShardItemRange(int64_t num_items, int32_t num_shards,
                    int32_t shard_index, int64_t* begin, int64_t* end);

// File naming convention for shard slices: "<base>.shard<i>of<N>".
std::string ShardSnapshotPath(const std::string& base, int32_t shard_index,
                              int32_t num_shards);

struct Snapshot {
  SnapshotMeta meta;
  ag::Tensor users;  // num_users x dim (empty when quant_users present)
  ag::Tensor items;  // num_items x dim (empty when quant_items present)
  // Quantized embedding sections — each one replaces (never accompanies)
  // its fp32 tensor on disk; a snapshot carries users XOR quant_users and
  // items XOR quant_items.
  quant::QuantizedMatrix quant_users;
  quant::QuantizedMatrix quant_items;
  // Optional IVF retrieval index over the item embeddings; empty() when
  // the snapshot was exported without one (engine falls back to the
  // brute-force scan).
  index::IvfIndex ivf;
  // Per-user train items, sorted ascending (TopK exclusion lists).
  std::vector<std::vector<int32_t>> seen;
  // Symmetric social neighbor lists, sorted ascending.
  std::vector<std::vector<int32_t>> social;
  // Train interaction count per item — the popularity ranking used for
  // degraded (unknown-user) requests.
  std::vector<int64_t> item_counts;
  // Shard manifest; empty() for ordinary (unsharded) snapshots.
  ShardInfo shard;

  bool has_quant_users() const { return !quant_users.empty(); }
  bool has_quant_items() const { return !quant_items.empty(); }
};

// Builds a snapshot from a fitted recommender (final embeddings) and its
// dataset (seen lists, social adjacency, popularity counts).
Snapshot BuildSnapshot(const train::Recommender& recommender,
                       const data::Dataset& dataset,
                       const std::string& model_name,
                       const std::string& tag);

// Atomic write (temp + rename) with trailing checksum.
util::Status WriteSnapshot(const Snapshot& snapshot,
                           const std::string& path);

// Fully-validating read; see the header comment for what is rejected.
util::StatusOr<Snapshot> ReadSnapshot(const std::string& path);

// Replaces the fp32 user/item tensors with quantized sections (per-row
// scales for int8, RNE-converted halves for fp16) and drops the fp32
// data. Build the index BEFORE quantizing — it needs the fp32 items.
util::Status QuantizeSnapshot(Snapshot* snapshot, quant::Codec codec);

// Builds the IVF retrieval index over the snapshot's fp32 item
// embeddings and attaches it. Fails if the items are already quantized.
util::Status BuildSnapshotIndex(Snapshot* snapshot,
                                const index::IvfConfig& config);

// Approximate resident footprint of a loaded snapshot: embedding bytes
// (quantized or fp32), index bytes, and the seen/social/count lists.
int64_t SnapshotResidentBytes(const Snapshot& snapshot);

// Section-table dump for `dgnn_inspect snapshot` — walks the headers
// without assembling a Snapshot, so it can describe files whose payloads
// would fail full validation. checksum_ok=false does not stop the walk.
struct SnapshotSectionInfo {
  uint32_t id = 0;
  std::string name;    // "users", "quant_items", ... ("unknown" otherwise)
  uint64_t bytes = 0;  // payload bytes
  std::string detail;  // shape / codec / nlist summary, best-effort
};
struct SnapshotFileInfo {
  uint64_t file_bytes = 0;
  uint64_t stored_checksum = 0;
  uint64_t computed_checksum = 0;
  bool checksum_ok = false;
  std::vector<SnapshotSectionInfo> sections;
  std::string meta_json;  // raw meta payload if a meta section was found
};
util::StatusOr<SnapshotFileInfo> InspectSnapshotFile(
    const std::string& path);

namespace internal {
// Section ids of the on-disk format, exposed for corruption tests.
inline constexpr uint32_t kSectionMeta = 1;
inline constexpr uint32_t kSectionUsers = 2;
inline constexpr uint32_t kSectionItems = 3;
inline constexpr uint32_t kSectionSeen = 4;
inline constexpr uint32_t kSectionSocial = 5;
inline constexpr uint32_t kSectionItemCounts = 6;
inline constexpr uint32_t kSectionQuantUsers = 7;
inline constexpr uint32_t kSectionQuantItems = 8;
inline constexpr uint32_t kSectionIvf = 9;
inline constexpr uint32_t kSectionShard = 10;

// FNV-1a 64-bit over `size` bytes — the snapshot checksum, exposed so
// tests can craft structurally-valid-but-tampered files.
uint64_t Fnv1a64(const void* data, size_t size);
}  // namespace internal

}  // namespace dgnn::serve

#endif  // DGNN_SERVE_SNAPSHOT_H_
