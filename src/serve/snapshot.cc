#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <utility>

#include "data/dataset.h"
#include "train/recommender.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/json.h"

namespace dgnn::serve {
namespace {

using util::Status;
using util::StatusOr;

constexpr char kMagic[8] = {'D', 'G', 'N', 'N', 'S', 'N', 'P', '1'};

// SplitMix64 finalizer — the ring's hash. Fixed for all time: ownership
// is part of the on-disk contract (the validator recomputes it).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr int kVnodesPerShard = 64;

// ----- serialization helpers (append to an in-memory buffer) -------------

template <typename T>
void AppendPod(std::string& out, T value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendTensor(std::string& out, const ag::Tensor& t) {
  AppendPod<int64_t>(out, t.rows());
  AppendPod<int64_t>(out, t.cols());
  out.append(reinterpret_cast<const char*>(t.data()),
             static_cast<size_t>(t.size()) * sizeof(float));
}

void AppendIdLists(std::string& out,
                   const std::vector<std::vector<int32_t>>& lists) {
  AppendPod<uint64_t>(out, lists.size());
  for (const auto& list : lists) {
    AppendPod<uint32_t>(out, static_cast<uint32_t>(list.size()));
    out.append(reinterpret_cast<const char*>(list.data()),
               list.size() * sizeof(int32_t));
  }
}

void AppendQuant(std::string& out, const quant::QuantizedMatrix& m) {
  AppendPod<uint8_t>(out, static_cast<uint8_t>(m.codec));
  AppendPod<int64_t>(out, m.rows);
  AppendPod<int64_t>(out, m.cols);
  if (m.codec == quant::Codec::kInt8) {
    out.append(reinterpret_cast<const char*>(m.scales.data()),
               m.scales.size() * sizeof(float));
    out.append(reinterpret_cast<const char*>(m.q8.data()), m.q8.size());
  } else {
    out.append(reinterpret_cast<const char*>(m.f16.data()),
               m.f16.size() * sizeof(uint16_t));
  }
}

void AppendSection(std::string& out, uint32_t id,
                   const std::string& payload) {
  AppendPod<uint32_t>(out, id);
  AppendPod<uint64_t>(out, payload.size());
  out.append(payload);
}

// ----- parsing helpers (cursor over the file image) ----------------------

struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Read(void* out, size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  template <typename T>
  bool ReadPod(T* out) {
    return Read(out, sizeof(T));
  }
  bool exhausted() const { return pos == size; }
};

Status Truncated(const std::string& where) {
  return Status::InvalidArgument("truncated snapshot: short read in " +
                                 where);
}

Status ParseTensor(Cursor& c, const std::string& what, ag::Tensor* out) {
  int64_t rows = 0;
  int64_t cols = 0;
  if (!c.ReadPod(&rows) || !c.ReadPod(&cols)) return Truncated(what);
  if (rows < 0 || cols <= 0 || rows > (1LL << 32) || cols > (1LL << 20)) {
    return Status::InvalidArgument("implausible " + what + " shape " +
                                   std::to_string(rows) + "x" +
                                   std::to_string(cols));
  }
  ag::Tensor t(rows, cols);
  if (!c.Read(t.data(), static_cast<size_t>(t.size()) * sizeof(float))) {
    return Truncated(what + " values");
  }
  *out = std::move(t);
  return Status::Ok();
}

Status ParseQuant(Cursor& c, const std::string& what,
                  quant::QuantizedMatrix* out) {
  uint8_t codec = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  if (!c.ReadPod(&codec) || !c.ReadPod(&rows) || !c.ReadPod(&cols)) {
    return Truncated(what);
  }
  if (codec != static_cast<uint8_t>(quant::Codec::kInt8) &&
      codec != static_cast<uint8_t>(quant::Codec::kFp16)) {
    return Status::InvalidArgument("unknown quantization codec " +
                                   std::to_string(codec) + " in " + what);
  }
  if (rows < 0 || cols <= 0 || rows > (1LL << 32) || cols > (1LL << 20)) {
    return Status::InvalidArgument("implausible " + what + " shape " +
                                   std::to_string(rows) + "x" +
                                   std::to_string(cols));
  }
  quant::QuantizedMatrix m;
  m.codec = static_cast<quant::Codec>(codec);
  m.rows = rows;
  m.cols = cols;
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (m.codec == quant::Codec::kInt8) {
    m.scales.resize(static_cast<size_t>(rows));
    if (!c.Read(m.scales.data(), m.scales.size() * sizeof(float))) {
      return Truncated(what + " scales");
    }
    for (float s : m.scales) {
      if (!std::isfinite(s) || s < 0.0f) {
        return Status::InvalidArgument(what +
                                       " has a non-finite or negative scale");
      }
    }
    m.q8.resize(n);
    if (!c.Read(m.q8.data(), n)) return Truncated(what + " values");
  } else {
    m.f16.resize(n);
    if (!c.Read(m.f16.data(), n * sizeof(uint16_t))) {
      return Truncated(what + " values");
    }
  }
  *out = std::move(m);
  return Status::Ok();
}

Status ParseIdLists(Cursor& c, const std::string& what, int64_t max_id,
                    bool require_sorted,
                    std::vector<std::vector<int32_t>>* out) {
  uint64_t count = 0;
  if (!c.ReadPod(&count)) return Truncated(what);
  if (count > (1ULL << 32)) {
    return Status::InvalidArgument("implausible " + what + " list count");
  }
  std::vector<std::vector<int32_t>> lists;
  lists.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!c.ReadPod(&len)) return Truncated(what);
    std::vector<int32_t> list(len);
    if (!c.Read(list.data(), static_cast<size_t>(len) * sizeof(int32_t))) {
      return Truncated(what + " entries");
    }
    for (size_t j = 0; j < list.size(); ++j) {
      if (list[j] < 0 || list[j] >= max_id) {
        return Status::InvalidArgument(
            what + " list " + std::to_string(i) + " has out-of-range id " +
            std::to_string(list[j]));
      }
      if (require_sorted && j > 0 && list[j] <= list[j - 1]) {
        return Status::InvalidArgument(what + " list " + std::to_string(i) +
                                       " is not strictly sorted");
      }
    }
    lists.push_back(std::move(list));
  }
  *out = std::move(lists);
  return Status::Ok();
}

// Shard manifest payload: fixed-width little-endian record, versioned so
// later PRs can extend it without breaking old readers.
constexpr uint32_t kShardSectionVersion = 1;

void AppendShard(std::string& out, const ShardInfo& shard) {
  AppendPod<uint32_t>(out, kShardSectionVersion);
  AppendPod<int32_t>(out, shard.num_shards);
  AppendPod<int32_t>(out, shard.shard_index);
  AppendPod<int64_t>(out, shard.item_begin);
  AppendPod<int64_t>(out, shard.item_end);
  AppendPod<int64_t>(out, shard.num_owned_users);
  AppendPod<uint64_t>(out, shard.hash_seed);
}

Status ParseShard(Cursor& c, ShardInfo* out) {
  uint32_t version = 0;
  if (!c.ReadPod(&version)) return Truncated("shard manifest");
  if (version != kShardSectionVersion) {
    return Status::InvalidArgument("unsupported shard manifest version " +
                                   std::to_string(version));
  }
  ShardInfo s;
  if (!c.ReadPod(&s.num_shards) || !c.ReadPod(&s.shard_index) ||
      !c.ReadPod(&s.item_begin) || !c.ReadPod(&s.item_end) ||
      !c.ReadPod(&s.num_owned_users) || !c.ReadPod(&s.hash_seed)) {
    return Truncated("shard manifest");
  }
  if (s.num_shards <= 0 || s.num_shards > (1 << 16)) {
    return Status::InvalidArgument("implausible shard count " +
                                   std::to_string(s.num_shards));
  }
  if (s.shard_index < 0 || s.shard_index >= s.num_shards) {
    return Status::InvalidArgument("shard index " +
                                   std::to_string(s.shard_index) +
                                   " out of range for " +
                                   std::to_string(s.num_shards) + " shards");
  }
  if (s.item_begin < 0 || s.item_end < s.item_begin ||
      s.num_owned_users < 0) {
    return Status::InvalidArgument("shard manifest has invalid ranges");
  }
  *out = s;
  return Status::Ok();
}

std::string MetaJson(const SnapshotMeta& meta) {
  util::JsonObject o;
  o.Set("format", "dgnn.snapshot")
      .Set("format_version", 1)
      .Set("model", meta.model_name)
      .Set("dataset", meta.dataset_name)
      .Set("tag", meta.tag)
      .Set("num_users", meta.num_users)
      .Set("num_items", meta.num_items)
      .Set("dim", meta.embedding_dim);
  return o.Build();
}

Status ParseMeta(const std::string& payload, SnapshotMeta* out) {
  auto parsed = util::ParseJson(payload);
  if (!parsed.ok()) {
    return Status::InvalidArgument("snapshot meta is not valid JSON: " +
                                   parsed.status().message());
  }
  const util::JsonValue& v = parsed.value();
  if (!v.is_object() || v.StringOr("format", "") != "dgnn.snapshot") {
    return Status::InvalidArgument("snapshot meta missing format marker");
  }
  if (v.NumberOr("format_version", 0) != 1) {
    return Status::InvalidArgument("unsupported snapshot format_version");
  }
  out->model_name = v.StringOr("model", "");
  out->dataset_name = v.StringOr("dataset", "");
  out->tag = v.StringOr("tag", "");
  out->num_users = static_cast<int64_t>(v.NumberOr("num_users", -1));
  out->num_items = static_cast<int64_t>(v.NumberOr("num_items", -1));
  out->embedding_dim = static_cast<int64_t>(v.NumberOr("dim", -1));
  if (out->num_users < 0 || out->num_items < 0 || out->embedding_dim <= 0) {
    return Status::InvalidArgument("snapshot meta has invalid dimensions");
  }
  return Status::Ok();
}

// Cross-section consistency: every count in the meta record must match
// the payloads it describes. For sharded snapshots the meta keeps GLOBAL
// counts while the tensors hold only the shard's slice, so the expected
// shapes are re-derived from the manifest (including recomputing the
// consistent-hash ownership — a manifest whose owned-user count does not
// match the ring is rejected, not trusted).
Status ValidateAssembled(const Snapshot& s) {
  const SnapshotMeta& m = s.meta;
  const int64_t user_rows =
      s.has_quant_users() ? s.quant_users.rows : s.users.rows();
  const int64_t user_cols =
      s.has_quant_users() ? s.quant_users.cols : s.users.cols();
  const int64_t item_rows =
      s.has_quant_items() ? s.quant_items.rows : s.items.rows();
  const int64_t item_cols =
      s.has_quant_items() ? s.quant_items.cols : s.items.cols();
  if (user_cols != m.embedding_dim || item_cols != m.embedding_dim) {
    return Status::InvalidArgument("embedding width disagrees with meta");
  }

  if (!s.shard.empty()) {
    const ShardInfo& sh = s.shard;
    // Bit-identical scatter/gather depends on exact fp32 scans; the
    // exporter never shards quantized or indexed snapshots.
    if (s.has_quant_users() || s.has_quant_items()) {
      return Status::InvalidArgument(
          "sharded snapshots must carry fp32 embeddings");
    }
    if (!s.ivf.empty()) {
      return Status::InvalidArgument(
          "sharded snapshots do not carry an IVF index");
    }
    int64_t want_begin = 0;
    int64_t want_end = 0;
    ShardItemRange(m.num_items, sh.num_shards, sh.shard_index, &want_begin,
                   &want_end);
    if (sh.item_begin != want_begin || sh.item_end != want_end) {
      return Status::InvalidArgument(
          "shard manifest item range disagrees with the canonical "
          "assignment policy");
    }
    if (item_rows != sh.item_end - sh.item_begin) {
      return Status::InvalidArgument(
          "item embedding rows disagree with shard item range");
    }
    if (user_rows != sh.num_owned_users) {
      return Status::InvalidArgument(
          "user embedding rows disagree with shard owned-user count");
    }
    ShardRing ring(sh.num_shards, sh.hash_seed);
    int64_t owned = 0;
    for (int64_t u = 0; u < m.num_users; ++u) {
      if (ring.Owner(static_cast<int32_t>(u)) == sh.shard_index) ++owned;
    }
    if (owned != sh.num_owned_users) {
      return Status::InvalidArgument(
          "shard manifest owned-user count disagrees with the "
          "consistent-hash ring");
    }
    if (static_cast<int64_t>(s.item_counts.size()) !=
        sh.item_end - sh.item_begin) {
      return Status::InvalidArgument(
          "item-count length disagrees with shard item range");
    }
    for (const auto& list : s.social) {
      if (!list.empty()) {
        return Status::InvalidArgument(
            "sharded snapshots must carry empty social lists");
      }
    }
  } else {
    if (user_rows != m.num_users) {
      return Status::InvalidArgument(
          "user embedding shape disagrees with meta");
    }
    if (item_rows != m.num_items) {
      return Status::InvalidArgument(
          "item embedding shape disagrees with meta");
    }
    if (!s.ivf.empty()) {
      DGNN_RETURN_IF_ERROR(
          index::ValidateIvfIndex(s.ivf, m.num_items, m.embedding_dim));
    }
    if (static_cast<int64_t>(s.item_counts.size()) != m.num_items) {
      return Status::InvalidArgument("item-count length disagrees with meta");
    }
  }

  if (static_cast<int64_t>(s.seen.size()) != m.num_users) {
    return Status::InvalidArgument("seen-list count disagrees with meta");
  }
  if (static_cast<int64_t>(s.social.size()) != m.num_users) {
    return Status::InvalidArgument("social-list count disagrees with meta");
  }
  for (int64_t c : s.item_counts) {
    if (c < 0) return Status::InvalidArgument("negative item count");
  }
  return Status::Ok();
}

}  // namespace

namespace internal {

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace internal

ShardRing::ShardRing(int32_t num_shards, uint64_t seed)
    : num_shards_(num_shards), seed_(seed) {
  if (num_shards_ <= 0) return;
  points_.reserve(static_cast<size_t>(num_shards_) * kVnodesPerShard);
  for (int32_t shard = 0; shard < num_shards_; ++shard) {
    for (int vnode = 0; vnode < kVnodesPerShard; ++vnode) {
      const uint64_t key = seed_ ^ (static_cast<uint64_t>(shard) *
                                        0x100000001b3ULL +
                                    static_cast<uint64_t>(vnode) + 1);
      points_.emplace_back(SplitMix64(key), shard);
    }
  }
  // Sort by (hash, shard) so hash collisions between vnodes resolve
  // deterministically everywhere.
  std::sort(points_.begin(), points_.end());
}

int32_t ShardRing::Owner(int32_t user) const {
  if (num_shards_ <= 1) return 0;
  const uint64_t h =
      SplitMix64(seed_ ^ 0x9e3779b97f4a7c15ULL ^
                 static_cast<uint64_t>(static_cast<uint32_t>(user)));
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](uint64_t hash, const std::pair<uint64_t, int32_t>& p) {
        return hash < p.first;
      });
  if (it == points_.end()) it = points_.begin();  // wrap around the ring
  return it->second;
}

std::vector<int32_t> OwnedUsers(const ShardInfo& shard, int64_t num_users) {
  std::vector<int32_t> owned;
  if (shard.empty()) return owned;
  ShardRing ring(shard.num_shards, shard.hash_seed);
  for (int64_t u = 0; u < num_users; ++u) {
    if (ring.Owner(static_cast<int32_t>(u)) == shard.shard_index) {
      owned.push_back(static_cast<int32_t>(u));
    }
  }
  return owned;
}

void ShardItemRange(int64_t num_items, int32_t num_shards,
                    int32_t shard_index, int64_t* begin, int64_t* end) {
  *begin = num_items * shard_index / num_shards;
  *end = num_items * (shard_index + 1) / num_shards;
}

std::string ShardSnapshotPath(const std::string& base, int32_t shard_index,
                              int32_t num_shards) {
  return base + ".shard" + std::to_string(shard_index) + "of" +
         std::to_string(num_shards);
}

Snapshot BuildSnapshot(const train::Recommender& recommender,
                       const data::Dataset& dataset,
                       const std::string& model_name,
                       const std::string& tag) {
  Snapshot s;
  s.users = recommender.user_embeddings();
  s.items = recommender.item_embeddings();
  s.seen = dataset.TrainItemsByUser();
  for (auto& list : s.seen) {
    // A user can interact with the same item repeatedly; the snapshot
    // stores the strictly-sorted distinct set (exclusion semantics and
    // popularity counts are per distinct pair).
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  s.social = dataset.SocialNeighbors();
  s.item_counts.assign(static_cast<size_t>(dataset.num_items), 0);
  for (const auto& inter : s.seen) {
    for (int32_t item : inter) {
      // seen lists are deduplicated per user; popularity counts distinct
      // (user, item) train pairs.
      s.item_counts[static_cast<size_t>(item)] += 1;
    }
  }
  s.meta.model_name = model_name;
  s.meta.dataset_name = dataset.name;
  s.meta.tag = tag;
  s.meta.num_users = s.users.rows();
  s.meta.num_items = s.items.rows();
  s.meta.embedding_dim = s.users.cols();
  return s;
}

Status WriteSnapshot(const Snapshot& snapshot, const std::string& path) {
  DGNN_FAILPOINT("snapshot.write");
  // Serialize everything into memory first so the checksum covers the
  // exact bytes written and the file hits disk in one pass.
  // Quantized sections replace their fp32 tensors in the same table slot,
  // and the IVF index (if any) rides at the end — so a snapshot with
  // neither produces the exact byte stream the seed-era writer produced.
  const bool has_ivf = !snapshot.ivf.empty();
  const bool has_shard = !snapshot.shard.empty();
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  AppendPod<uint32_t>(buf, 6 + (has_ivf ? 1u : 0u) +
                               (has_shard ? 1u : 0u));  // section count

  std::string payload = MetaJson(snapshot.meta);
  AppendSection(buf, internal::kSectionMeta, payload);

  payload.clear();
  if (snapshot.has_quant_users()) {
    AppendQuant(payload, snapshot.quant_users);
    AppendSection(buf, internal::kSectionQuantUsers, payload);
  } else {
    AppendTensor(payload, snapshot.users);
    AppendSection(buf, internal::kSectionUsers, payload);
  }

  payload.clear();
  if (snapshot.has_quant_items()) {
    AppendQuant(payload, snapshot.quant_items);
    AppendSection(buf, internal::kSectionQuantItems, payload);
  } else {
    AppendTensor(payload, snapshot.items);
    AppendSection(buf, internal::kSectionItems, payload);
  }

  payload.clear();
  AppendIdLists(payload, snapshot.seen);
  AppendSection(buf, internal::kSectionSeen, payload);

  payload.clear();
  AppendIdLists(payload, snapshot.social);
  AppendSection(buf, internal::kSectionSocial, payload);

  payload.clear();
  AppendPod<uint64_t>(payload, snapshot.item_counts.size());
  payload.append(reinterpret_cast<const char*>(snapshot.item_counts.data()),
                 snapshot.item_counts.size() * sizeof(int64_t));
  AppendSection(buf, internal::kSectionItemCounts, payload);

  if (has_ivf) {
    payload.clear();
    snapshot.ivf.Serialize(&payload);
    AppendSection(buf, internal::kSectionIvf, payload);
  }

  if (has_shard) {
    payload.clear();
    AppendShard(payload, snapshot.shard);
    AppendSection(buf, internal::kSectionShard, payload);
  }

  AppendPod<uint64_t>(buf, internal::Fnv1a64(buf.data(), buf.size()));

  // Temp + fsync + atomic rename + parent-dir fsync (fs helpers), same
  // durability story as SaveParameters: a crash mid-export leaves the
  // previous snapshot at `path` intact, and a completed export survives
  // power loss.
  return fs::AtomicWriteFile(path, buf);
}

StatusOr<Snapshot> ReadSnapshot(const std::string& path) {
  DGNN_FAILPOINT("snapshot.read");
  auto contents = fs::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& buf = contents.value();

  // Envelope: magic up front, checksum over everything before the trailing
  // 8 checksum bytes. Both checks run before any payload parsing so a
  // torn or bit-flipped file is rejected wholesale.
  if (buf.size() < sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated snapshot (too small): " + path);
  }
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  const size_t body_size = buf.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, buf.data() + body_size, sizeof(uint64_t));
  const uint64_t actual_checksum = internal::Fnv1a64(buf.data(), body_size);
  if (stored_checksum != actual_checksum) {
    return Status::InvalidArgument("checksum mismatch in " + path +
                                   " (file corrupt or truncated)");
  }

  Cursor c{buf.data(), body_size, sizeof(kMagic)};
  uint32_t section_count = 0;
  if (!c.ReadPod(&section_count)) return Truncated("section table");

  Snapshot out;
  std::set<uint32_t> seen_sections;
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    uint64_t payload_bytes = 0;
    if (!c.ReadPod(&id) || !c.ReadPod(&payload_bytes)) {
      return Truncated("section header");
    }
    if (payload_bytes > c.size - c.pos) {
      return Truncated("section " + std::to_string(id) + " payload");
    }
    if (!seen_sections.insert(id).second) {
      return Status::InvalidArgument("duplicate section " +
                                     std::to_string(id) + " in " + path);
    }
    // Sub-cursor pinned to the declared payload span; a section whose
    // parser consumes fewer/more bytes than declared is a format error.
    Cursor sc{c.data + c.pos, static_cast<size_t>(payload_bytes), 0};
    c.pos += payload_bytes;
    Status st = Status::Ok();
    switch (id) {
      case internal::kSectionMeta: {
        std::string payload(sc.data, sc.size);
        sc.pos = sc.size;
        st = ParseMeta(payload, &out.meta);
        break;
      }
      case internal::kSectionUsers:
        st = ParseTensor(sc, "user embeddings", &out.users);
        break;
      case internal::kSectionItems:
        st = ParseTensor(sc, "item embeddings", &out.items);
        break;
      case internal::kSectionSeen:
        st = ParseIdLists(sc, "seen", INT32_MAX, /*require_sorted=*/true,
                          &out.seen);
        break;
      case internal::kSectionSocial:
        st = ParseIdLists(sc, "social", INT32_MAX, /*require_sorted=*/true,
                          &out.social);
        break;
      case internal::kSectionItemCounts: {
        uint64_t n = 0;
        if (!sc.ReadPod(&n) || n > (1ULL << 32)) {
          st = Truncated("item counts");
          break;
        }
        out.item_counts.resize(n);
        if (!sc.Read(out.item_counts.data(), n * sizeof(int64_t))) {
          st = Truncated("item counts");
        }
        break;
      }
      case internal::kSectionQuantUsers:
        st = ParseQuant(sc, "quantized user embeddings", &out.quant_users);
        break;
      case internal::kSectionQuantItems:
        st = ParseQuant(sc, "quantized item embeddings", &out.quant_items);
        break;
      case internal::kSectionIvf: {
        // ParseIvfIndex validates its own span end-to-end (including a
        // trailing-bytes check), so consume the full payload here.
        auto parsed = index::ParseIvfIndex(sc.data, sc.size);
        if (!parsed.ok()) {
          st = parsed.status();
          break;
        }
        out.ivf = std::move(parsed.value());
        sc.pos = sc.size;
        break;
      }
      case internal::kSectionShard:
        st = ParseShard(sc, &out.shard);
        break;
      default:
        return Status::InvalidArgument("unknown section " +
                                       std::to_string(id) + " in " + path);
    }
    if (!st.ok()) return st;
    if (!sc.exhausted()) {
      return Status::InvalidArgument("section " + std::to_string(id) +
                                     " has trailing bytes in " + path);
    }
  }
  if (!c.exhausted()) {
    return Status::InvalidArgument("trailing garbage after " +
                                   std::to_string(section_count) +
                                   " sections in " + path);
  }
  for (uint32_t required :
       {internal::kSectionMeta, internal::kSectionSeen,
        internal::kSectionSocial, internal::kSectionItemCounts}) {
    if (seen_sections.count(required) == 0) {
      return Status::InvalidArgument("missing section " +
                                     std::to_string(required) + " in " +
                                     path);
    }
  }
  // Embeddings arrive as fp32 XOR quantized — never both, never neither.
  const bool has_users = seen_sections.count(internal::kSectionUsers) != 0;
  const bool has_qusers =
      seen_sections.count(internal::kSectionQuantUsers) != 0;
  if (has_users == has_qusers) {
    return Status::InvalidArgument(
        has_users ? "snapshot has both fp32 and quantized user embeddings"
                  : "missing user embeddings section in " + path);
  }
  const bool has_items = seen_sections.count(internal::kSectionItems) != 0;
  const bool has_qitems =
      seen_sections.count(internal::kSectionQuantItems) != 0;
  if (has_items == has_qitems) {
    return Status::InvalidArgument(
        has_items ? "snapshot has both fp32 and quantized item embeddings"
                  : "missing item embeddings section in " + path);
  }

  // Payloads are individually well-formed; now check they agree with each
  // other (meta counts vs tensor shapes vs list lengths, id ranges).
  DGNN_RETURN_IF_ERROR(ValidateAssembled(out));
  // Sharded snapshots keep GLOBAL item ids in their seen lists but only
  // ids inside the shard's item range (partitioning filtered the rest).
  const int64_t seen_lo = out.shard.empty() ? 0 : out.shard.item_begin;
  const int64_t seen_hi =
      out.shard.empty() ? out.meta.num_items : out.shard.item_end;
  for (const auto& list : out.seen) {
    for (int32_t item : list) {
      if (item < seen_lo || item >= seen_hi) {
        return Status::InvalidArgument("seen list references item " +
                                       std::to_string(item) +
                                       " beyond catalog slice");
      }
    }
  }
  for (const auto& list : out.social) {
    for (int32_t user : list) {
      if (user >= out.meta.num_users) {
        return Status::InvalidArgument("social list references user " +
                                       std::to_string(user) +
                                       " beyond user count");
      }
    }
  }
  return out;
}

Status QuantizeSnapshot(Snapshot* snapshot, quant::Codec codec) {
  if (snapshot->has_quant_users() || snapshot->has_quant_items()) {
    return Status::InvalidArgument("snapshot is already quantized");
  }
  snapshot->quant_users = quant::Quantize(
      snapshot->users.data(), snapshot->users.rows(), snapshot->users.cols(),
      codec);
  snapshot->quant_items = quant::Quantize(
      snapshot->items.data(), snapshot->items.rows(), snapshot->items.cols(),
      codec);
  // Drop the fp32 tensors — the quantized sections replace them both in
  // memory and on disk.
  snapshot->users = ag::Tensor();
  snapshot->items = ag::Tensor();
  return Status::Ok();
}

Status BuildSnapshotIndex(Snapshot* snapshot,
                          const index::IvfConfig& config) {
  if (snapshot->has_quant_items()) {
    return Status::InvalidArgument(
        "cannot build index over quantized items: build the index before "
        "quantizing the snapshot");
  }
  if (snapshot->items.rows() <= 0) {
    return Status::InvalidArgument(
        "cannot build index over an empty item catalog");
  }
  snapshot->ivf = index::BuildIvfIndex(
      snapshot->items.data(), snapshot->items.rows(), snapshot->items.cols(),
      config);
  return Status::Ok();
}

int64_t SnapshotResidentBytes(const Snapshot& s) {
  int64_t bytes = 0;
  bytes += s.users.size() * static_cast<int64_t>(sizeof(float));
  bytes += s.items.size() * static_cast<int64_t>(sizeof(float));
  bytes += s.quant_users.ResidentBytes();
  bytes += s.quant_items.ResidentBytes();
  bytes += s.ivf.ResidentBytes();
  const int64_t vec_overhead =
      static_cast<int64_t>(sizeof(std::vector<int32_t>));
  for (const auto& list : s.seen) {
    bytes += vec_overhead +
             static_cast<int64_t>(list.size()) * sizeof(int32_t);
  }
  for (const auto& list : s.social) {
    bytes += vec_overhead +
             static_cast<int64_t>(list.size()) * sizeof(int32_t);
  }
  bytes += static_cast<int64_t>(s.item_counts.size()) * sizeof(int64_t);
  return bytes;
}

namespace {

std::string SectionName(uint32_t id) {
  switch (id) {
    case internal::kSectionMeta: return "meta";
    case internal::kSectionUsers: return "users";
    case internal::kSectionItems: return "items";
    case internal::kSectionSeen: return "seen";
    case internal::kSectionSocial: return "social";
    case internal::kSectionItemCounts: return "item_counts";
    case internal::kSectionQuantUsers: return "quant_users";
    case internal::kSectionQuantItems: return "quant_items";
    case internal::kSectionIvf: return "ivf";
    case internal::kSectionShard: return "shard";
    default: return "unknown";
  }
}

// Best-effort one-line description of a section payload prefix; returns
// "" when the payload is too short to describe.
std::string SectionDetail(uint32_t id, const char* data, size_t size) {
  Cursor c{data, size, 0};
  switch (id) {
    case internal::kSectionUsers:
    case internal::kSectionItems: {
      int64_t rows = 0, cols = 0;
      if (!c.ReadPod(&rows) || !c.ReadPod(&cols)) return "";
      return "fp32 " + std::to_string(rows) + "x" + std::to_string(cols);
    }
    case internal::kSectionQuantUsers:
    case internal::kSectionQuantItems: {
      uint8_t codec = 0;
      int64_t rows = 0, cols = 0;
      if (!c.ReadPod(&codec) || !c.ReadPod(&rows) || !c.ReadPod(&cols)) {
        return "";
      }
      std::string name =
          codec == static_cast<uint8_t>(quant::Codec::kInt8)   ? "int8"
          : codec == static_cast<uint8_t>(quant::Codec::kFp16) ? "fp16"
                                                               : "codec?";
      std::string detail =
          name + " " + std::to_string(rows) + "x" + std::to_string(cols);
      if (codec == static_cast<uint8_t>(quant::Codec::kInt8)) {
        detail += " (per-row scales)";
      }
      return detail;
    }
    case internal::kSectionSeen:
    case internal::kSectionSocial: {
      uint64_t count = 0;
      if (!c.ReadPod(&count)) return "";
      return std::to_string(count) + " lists";
    }
    case internal::kSectionItemCounts: {
      uint64_t count = 0;
      if (!c.ReadPod(&count)) return "";
      return std::to_string(count) + " items";
    }
    case internal::kSectionIvf: {
      int32_t nlist = 0;
      int64_t dim = 0, items = 0;
      if (!c.ReadPod(&nlist) || !c.ReadPod(&dim) || !c.ReadPod(&items)) {
        return "";
      }
      return "nlist=" + std::to_string(nlist) +
             " dim=" + std::to_string(dim) +
             " items=" + std::to_string(items);
    }
    case internal::kSectionShard: {
      ShardInfo sh;
      if (!ParseShard(c, &sh).ok()) return "";
      return "shard " + std::to_string(sh.shard_index) + "/" +
             std::to_string(sh.num_shards) + " items [" +
             std::to_string(sh.item_begin) + "," +
             std::to_string(sh.item_end) + ") owned_users=" +
             std::to_string(sh.num_owned_users);
    }
    default:
      return "";
  }
}

}  // namespace

StatusOr<SnapshotFileInfo> InspectSnapshotFile(const std::string& path) {
  auto contents = fs::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& buf = contents.value();

  SnapshotFileInfo info;
  info.file_bytes = buf.size();
  if (buf.size() < sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated snapshot (too small): " + path);
  }
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  const size_t body_size = buf.size() - sizeof(uint64_t);
  std::memcpy(&info.stored_checksum, buf.data() + body_size,
              sizeof(uint64_t));
  info.computed_checksum = internal::Fnv1a64(buf.data(), body_size);
  info.checksum_ok = info.stored_checksum == info.computed_checksum;

  // Walk the section table best-effort — a checksum mismatch does not stop
  // the walk (the caller wants to see WHICH section looks damaged), but a
  // header that runs off the end of the file does.
  Cursor c{buf.data(), body_size, sizeof(kMagic)};
  uint32_t section_count = 0;
  if (!c.ReadPod(&section_count)) return info;
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    uint64_t payload_bytes = 0;
    if (!c.ReadPod(&id) || !c.ReadPod(&payload_bytes)) break;
    SnapshotSectionInfo sec;
    sec.id = id;
    sec.name = SectionName(id);
    sec.bytes = payload_bytes;
    const uint64_t avail = c.size - c.pos;
    const size_t span = static_cast<size_t>(std::min(payload_bytes, avail));
    sec.detail = SectionDetail(id, c.data + c.pos, span);
    if (payload_bytes > avail) {
      sec.detail += (sec.detail.empty() ? "" : ", ");
      sec.detail += "TRUNCATED (declares " + std::to_string(payload_bytes) +
                    " bytes, " + std::to_string(avail) + " remain)";
      info.sections.push_back(std::move(sec));
      break;
    }
    if (id == internal::kSectionMeta) {
      info.meta_json.assign(c.data + c.pos,
                            static_cast<size_t>(payload_bytes));
    }
    info.sections.push_back(std::move(sec));
    c.pos += payload_bytes;
  }
  return info;
}

}  // namespace dgnn::serve
