// Replayable request traces for open-loop serving benchmarks.
//
// A trace pins down WHAT is asked and WHEN it should arrive: each record
// carries a scheduled arrival time (nanoseconds from trace start) plus
// the full request content. Replaying the same trace against any engine
// configuration, with any number of dispatch workers, issues the exact
// same request stream on the exact same schedule — the precondition for
// comparing latency numbers across PRs (the published BENCH_serve.json
// trajectory) and for coordinated-omission-safe measurement (latency is
// taken from the *scheduled* arrival, never from when a busy client got
// around to sending; see serve/replay.h).
//
// Arrival schedules (GenerateTrace):
//   * poisson — exponential interarrival gaps at a fixed target rate;
//     the memoryless baseline every open-loop bench should start from.
//   * burst   — square wave: alternating high/low rate phases with the
//     base rate normalized so the time-average equals target_qps. Shows
//     how the engine degrades when load arrives in slams rather than
//     evenly.
//   * diurnal — sinusoidal instantaneous rate (thinned Poisson), the
//     smooth day/night shape; pairs with the synthetic generator's
//     diurnal event timestamps.
//
// File format (little-endian), magic "DGNNTRC1":
//
//   magic (8 bytes)
//   uint64 seed            (schedule seed, for provenance)
//   uint64 record_count
//   per record (21 bytes, packed):
//     int64  arrival_ns    (monotone nondecreasing from 0)
//     uint8  type          (0 TopK, 1 Score, 2 SimilarUsers)
//     int32  user
//     int32  item
//     int32  k
//   uint64 FNV-1a checksum of every byte above
//
// ReadTrace validates the ENTIRE file before returning — magic, exact
// length, checksum, record types, nonnegative ids, monotone arrivals —
// so a truncated, bit-flipped or trailing-garbage file yields an error,
// never a half-parsed trace. WriteTrace goes through the atomic
// temp+fsync+rename path shared with snapshots and checkpoints.

#ifndef DGNN_SERVE_TRACE_H_
#define DGNN_SERVE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "util/status.h"

namespace dgnn::serve {

struct TraceRecord {
  int64_t arrival_ns = 0;  // scheduled arrival, ns from trace start
  uint8_t type = 0;        // Request::Type as uint8
  int32_t user = 0;
  int32_t item = 0;
  int32_t k = 0;

  Request ToRequest() const;
  bool operator==(const TraceRecord& o) const {
    return arrival_ns == o.arrival_ns && type == o.type && user == o.user &&
           item == o.item && k == o.k;
  }
};

struct Trace {
  uint64_t seed = 0;
  std::vector<TraceRecord> records;
};

enum class ArrivalProcess { kPoisson, kBurst, kDiurnal };

// Parses "poisson" / "burst" / "diurnal".
util::StatusOr<ArrivalProcess> ParseArrivalProcess(const std::string& name);
const char* ArrivalProcessName(ArrivalProcess p);

struct ScheduleConfig {
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  // Time-average request rate; every schedule is normalized to it.
  double target_qps = 1000.0;
  int64_t num_requests = 1000;
  // Burst schedule: period of one high+low cycle and the high:low rate
  // ratio. Half the period runs at 2*target/(1+1/ratio)... normalized so
  // the average stays target_qps.
  double burst_period_s = 1.0;
  double burst_ratio = 4.0;
  // Diurnal schedule: sinusoid period. Rate swings between
  // (1 ± diurnal_amplitude) * target_qps.
  double diurnal_period_s = 4.0;
  double diurnal_amplitude = 0.8;
  uint64_t seed = 1;
  // Emit known-user TopK requests only (no Score / SimilarUsers /
  // degraded slices) — isolates the retrieval path so brute-force vs IVF
  // p99 comparisons aren't masked by the full-catalog SimilarUsers scan.
  bool topk_only = false;
};

// Deterministically builds a trace: arrival times from the configured
// process, request mix matching the closed-loop bench (7/10 TopK, 1/10
// Score, 1/10 SimilarUsers, 1/10 unknown-user degraded traffic) with
// `hot_fraction` of known-user traffic on the first num_users/8 users.
// Same config -> bit-identical trace, on any machine.
Trace GenerateTrace(const ScheduleConfig& schedule, int32_t num_users,
                    int32_t num_items, int k, double hot_fraction);

// Atomic write (temp + fsync + rename) with trailing checksum.
util::Status WriteTrace(const Trace& trace, const std::string& path);

// Fully-validating read; see the header comment for what is rejected.
util::StatusOr<Trace> ReadTrace(const std::string& path);

// In-memory serialization (the exact on-disk bytes); exposed so tests
// can assert bit-identical round trips and craft corrupted files.
std::string SerializeTrace(const Trace& trace);

}  // namespace dgnn::serve

#endif  // DGNN_SERVE_TRACE_H_
