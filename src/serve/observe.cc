#include "serve/observe.h"

#include <string>
#include <vector>

namespace dgnn::serve::observe {
namespace {

// The flat counter fields every stats payload must carry (the original
// `stats` op contract plus failed_requests); order is the exposition
// order.
constexpr const char* kCounterFields[] = {
    "requests",          "batches",          "cache_hits",
    "cache_misses",      "snapshot_swaps",   "degraded_requests",
    "shed_requests",     "expired_requests", "failed_requests",
};

constexpr const char* kWindowNames[] = {"1s", "10s", "60s"};

// Window gauges exposed to Prometheus (a subset of WindowJson — rates
// and quantiles; the raw per-window counts are derivable from the
// *_total counters by the scraper).
constexpr const char* kWindowGauges[] = {
    "qps",     "availability", "cache_hit_rate",
    "p50_ms",  "p95_ms",       "p99_ms",
    "mean_ms", "queue_depth",  "p99_violations",
    "availability_violations",
};

std::string FormatNumber(double v) {
  // Integers print without a fraction so counter samples look like
  // counters; everything else uses the round-trip double format.
  const auto as_int = static_cast<int64_t>(v);
  if (static_cast<double>(as_int) == v) return std::to_string(as_int);
  return util::JsonDouble(v);
}

}  // namespace

std::string WindowJson(
    const telemetry::WindowedStats::WindowAggregate& w) {
  util::JsonObject o;
  o.Set("ticks", static_cast<int64_t>(w.ticks))
      .Set("seconds", w.seconds)
      .Set("requests", w.requests)
      .Set("ok", w.ok)
      .Set("shed", w.shed)
      .Set("expired", w.expired)
      .Set("failed", w.failed)
      .Set("degraded", w.degraded)
      .Set("swaps", w.swaps)
      .Set("cache_hits", w.cache_hits)
      .Set("cache_misses", w.cache_misses)
      .Set("queue_depth", w.queue_depth)
      .Set("qps", w.qps)
      .Set("availability", w.availability)
      .Set("cache_hit_rate", w.cache_hit_rate)
      .Set("p50_ms", w.p50_ms)
      .Set("p95_ms", w.p95_ms)
      .Set("p99_ms", w.p99_ms)
      .Set("mean_ms", w.mean_ms)
      .Set("p99_violations", static_cast<int64_t>(w.p99_violations))
      .Set("availability_violations",
           static_cast<int64_t>(w.availability_violations));
  return o.Build();
}

void AppendStatsFields(const ServingEngine& engine, util::JsonObject* o) {
  const EngineStats s = engine.stats();
  o->Set("requests", s.requests)
      .Set("batches", s.batches)
      .Set("cache_hits", s.cache_hits)
      .Set("cache_misses", s.cache_misses)
      .Set("snapshot_swaps", s.snapshot_swaps)
      .Set("degraded_requests", s.degraded_requests)
      .Set("shed_requests", s.shed_requests)
      .Set("expired_requests", s.expired_requests)
      .Set("failed_requests", s.failed_requests);
  const telemetry::WindowedStats& w = engine.windows();
  util::JsonObject windows;
  windows.SetRaw("1s", WindowJson(w.Aggregate(1)))
      .SetRaw("10s", WindowJson(w.Aggregate(10)))
      .SetRaw("60s", WindowJson(w.Aggregate(60)));
  o->SetRaw("windows", windows.Build());
  util::JsonObject slo;
  slo.Set("p99_ms", w.config().slo_p99_ms)
      .Set("availability", w.config().slo_availability)
      .Set("ticks", w.total_ticks())
      .Set("p99_violation_ticks", w.total_p99_violations())
      .Set("availability_violation_ticks",
           w.total_availability_violations());
  o->SetRaw("slo", slo.Build());
}

std::string StatsJson(const ServingEngine& engine) {
  util::JsonObject o;
  AppendStatsFields(engine, &o);
  return o.Build();
}

std::string RequestTraceJson(const RequestTrace& t) {
  util::JsonObject o;
  o.Set("trace_id", t.trace_id)
      .Set("ts_us", t.ts_us)
      .Set("type", t.type)
      .Set("outcome", t.outcome)
      .Set("user", static_cast<int64_t>(t.user))
      .Set("k", static_cast<int64_t>(t.k))
      .Set("batch_size", static_cast<int64_t>(t.batch_size))
      .Set("snapshot_version", t.snapshot_version)
      .Set("degraded", t.degraded)
      .Set("queue_s", t.queue_seconds)
      .Set("recal_s", t.recal_seconds)
      .Set("compute_s", t.compute_seconds)
      .Set("rank_s", t.rank_seconds)
      .Set("reply_s", t.reply_seconds)
      .Set("total_s", t.total_seconds);
  return o.Build();
}

util::Status ValidateStatsJson(const std::string& stats_json) {
  auto parsed = util::ParseJson(stats_json);
  if (!parsed.ok()) return parsed.status();
  const util::JsonValue& v = parsed.value();
  if (!v.is_object()) {
    return util::Status::InvalidArgument("stats payload is not an object");
  }
  for (const char* field : kCounterFields) {
    const util::JsonValue* f = v.Find(field);
    if (f == nullptr || !f->is_number()) {
      return util::Status::InvalidArgument(
          std::string("stats payload missing numeric field '") + field +
          "'");
    }
  }
  const util::JsonValue* windows = v.Find("windows");
  if (windows == nullptr || !windows->is_object()) {
    return util::Status::InvalidArgument(
        "stats payload missing \"windows\" object");
  }
  for (const char* name : kWindowNames) {
    const util::JsonValue* w = windows->Find(name);
    if (w == nullptr || !w->is_object()) {
      return util::Status::InvalidArgument(
          std::string("\"windows\" missing window '") + name + "'");
    }
    for (const char* g : kWindowGauges) {
      const util::JsonValue* f = w->Find(g);
      if (f == nullptr || !f->is_number()) {
        return util::Status::InvalidArgument(
            std::string("window '") + name +
            "' missing numeric field '" + g + "'");
      }
    }
  }
  const util::JsonValue* slo = v.Find("slo");
  if (slo == nullptr || !slo->is_object()) {
    return util::Status::InvalidArgument(
        "stats payload missing \"slo\" object");
  }
  return util::Status::Ok();
}

util::StatusOr<std::string> PromTextFromStatsJson(
    const std::string& stats_json) {
  util::Status valid = ValidateStatsJson(stats_json);
  if (!valid.ok()) return valid;
  auto parsed = util::ParseJson(stats_json);
  if (!parsed.ok()) return parsed.status();
  const util::JsonValue& v = parsed.value();
  std::string out;
  out.reserve(2048);
  for (const char* field : kCounterFields) {
    const std::string metric = std::string("dgnn_serve_") + field + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + FormatNumber(v.NumberOr(field, 0.0)) + "\n";
  }
  const util::JsonValue* windows = v.Find("windows");
  for (const char* g : kWindowGauges) {
    const std::string metric = std::string("dgnn_serve_window_") + g;
    out += "# TYPE " + metric + " gauge\n";
    for (const char* name : kWindowNames) {
      const util::JsonValue* w = windows->Find(name);
      out += metric + "{window=\"" + name + "\"} " +
             FormatNumber(w->NumberOr(g, 0.0)) + "\n";
    }
  }
  const util::JsonValue* slo = v.Find("slo");
  const struct { const char* field; const char* metric; } slo_counters[] = {
      {"ticks", "dgnn_serve_slo_ticks_total"},
      {"p99_violation_ticks", "dgnn_serve_slo_p99_violation_ticks_total"},
      {"availability_violation_ticks",
       "dgnn_serve_slo_availability_violation_ticks_total"},
  };
  for (const auto& c : slo_counters) {
    out += std::string("# TYPE ") + c.metric + " counter\n";
    out += std::string(c.metric) + " " +
           FormatNumber(slo->NumberOr(c.field, 0.0)) + "\n";
  }
  return out;
}

util::Status JsonlAppender::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  out_.open(path, std::ios::app);
  if (!out_.is_open()) {
    return util::Status::NotFound("cannot open for append: " + path);
  }
  active_ = true;
  return util::Status::Ok();
}

void JsonlAppender::Append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) return;
  out_ << line << '\n';
  // Flush per line: a crash mid-run leaves a valid JSONL prefix.
  out_.flush();
}

bool JsonlAppender::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void JsonlAppender::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) return;
  out_.flush();
  out_.close();
  active_ = false;
}

}  // namespace dgnn::serve::observe
