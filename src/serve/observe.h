// Exposition surface over the serving observability plane: renders a
// ServingEngine's counters + rolling windows + SLO burn accounting as a
// JSON snapshot, the same snapshot as Prometheus text-format
// exposition, and sampled RequestTrace records as NDJSON lines — shared
// by dgnn_serve (the `stats` op, `--stats-out`, `--request-log`) and
// dgnn_inspect (`stats` / `watch` render the same payloads offline).
//
// The Prometheus renderer takes the JSON snapshot as INPUT rather than
// the engine, so `{"op":"stats","format":"prom"}` on a live server and
// `dgnn_inspect stats --prom` over a stats JSONL file are one code path
// and round-trip by construction.

#ifndef DGNN_SERVE_OBSERVE_H_
#define DGNN_SERVE_OBSERVE_H_

#include <fstream>
#include <mutex>
#include <string>

#include "serve/engine.h"
#include "util/json.h"
#include "util/status.h"

namespace dgnn::serve::observe {

// Appends the stats payload fields to `o`: the flat EngineStats fields
// (wire-compatible with the pre-observability `stats` op), then
// "windows" ({"1s":{...},"10s":{...},"60s":{...}}) and "slo". Callers
// add protocol fields (ok/op) or a timestamp themselves.
void AppendStatsFields(const ServingEngine& engine, util::JsonObject* o);

// The standalone snapshot object ("{...}") — the --stats-out JSONL
// line body and the dgnn_inspect input format.
std::string StatsJson(const ServingEngine& engine);

// One window aggregate as a JSON object.
std::string WindowJson(
    const telemetry::WindowedStats::WindowAggregate& w);

// One sampled per-request trace record as a JSON object (the
// --request-log NDJSON line body). Stage fields are seconds, matching
// the serve.stage.* histogram units; ts_us is the admission timestamp
// on the chrome-trace epoch clock.
std::string RequestTraceJson(const RequestTrace& t);

// Prometheus text-format exposition rendered from a StatsJson payload.
// Fails (rather than emitting partial text) when `stats_json` is not a
// JSON object or lacks the flat counter fields.
util::StatusOr<std::string> PromTextFromStatsJson(
    const std::string& stats_json);

// Validates one stats JSONL line: must parse as a JSON object and carry
// the flat counters plus a well-formed "windows" object. Returns the
// first problem found; used by `dgnn_inspect stats` and the CI gate's
// corrupted-file must-fail check.
util::Status ValidateStatsJson(const std::string& stats_json);

// Crash-safe JSONL appender (run-log idiom: plain append + flush per
// line, so a SIGKILL leaves a valid prefix — unlike fs::AppendWriter,
// which only publishes on Close). Thread-safe; Append before Open or
// after Close is a silent no-op.
class JsonlAppender {
 public:
  util::Status Open(const std::string& path);
  void Append(const std::string& line);
  bool active() const;
  void Close();

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  bool active_ = false;
};

}  // namespace dgnn::serve::observe

#endif  // DGNN_SERVE_OBSERVE_H_
