// Shared ranking primitives for the two scoring surfaces — the in-process
// train::Recommender and the online serve::ServingEngine. Both rank with
// the SAME comparator and the SAME scan helpers defined here, so their
// top-K output is bit-identical by construction (the serving acceptance
// bar), not by coincidence of two copies staying in sync.
//
// Determinism: every helper scores candidates with a sequential
// per-candidate dot product inside a fixed-grain ParallelFor (disjoint
// output slots), then filters and selects serially — results are
// bit-identical for any thread count (see src/util/thread_pool.h).

#ifndef DGNN_SERVE_RANKING_H_
#define DGNN_SERVE_RANKING_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ag/tensor.h"
#include "kernels/kernels.h"
#include "quant/quant.h"
#include "util/thread_pool.h"

namespace dgnn::serve {

struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;
};

// Candidate rows scored per ParallelFor chunk in the catalog scans; fixed
// so scores are computed identically for any thread count.
inline constexpr int64_t kScanGrain = 256;

// Deterministic ordering: score descending, ties broken by lower id.
inline bool ScoreGreater(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

// Both scoring surfaces call the same dispatched kernel, so train-time
// and serve-time scores stay bit-identical by construction in either
// numeric mode (deterministic: serial index order on every ISA; fast:
// the same multi-lane FMA sum on both surfaces).
inline float Dot(const float* a, const float* b, int64_t d) {
  return kernels::Dot(a, b, d);
}

// Keeps the k best entries of `scored` under ScoreGreater (k clamped to
// the candidate count), sorted descending.
inline void SelectTopK(std::vector<ScoredItem>& scored, int k) {
  const size_t keep =
      std::min<size_t>(static_cast<size_t>(std::max(k, 0)), scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<int64_t>(keep),
                    scored.end(), ScoreGreater);
  scored.resize(keep);
}

// Top-k rows of `items` by dot product with `u` (length items.cols()),
// excluding ids present in the sorted `seen` list. The *Timed variant
// additionally reports how the call split between the parallel catalog
// scan (`compute_seconds`) and the serial filter + select
// (`rank_seconds`) for per-stage serving attribution; either pointer may
// be null, and when both are null no clock is read. The arithmetic is
// identical in both variants — timing never changes scores or order.
inline std::vector<ScoredItem> TopKUnseenItemsTimed(
    const float* u, const ag::Tensor& items,
    const std::vector<int32_t>& seen, int k, double* compute_seconds,
    double* rank_seconds) {
  using Clock = std::chrono::steady_clock;
  const bool timed = compute_seconds != nullptr || rank_seconds != nullptr;
  Clock::time_point t0;
  if (timed) t0 = Clock::now();
  // Score the whole catalog in parallel (disjoint slots), then filter and
  // select serially — same scores and ordering as the serial scan.
  std::vector<float> scores(static_cast<size_t>(items.rows()));
  util::ParallelFor(0, items.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      scores[static_cast<size_t>(i)] = Dot(u, items.row(i), items.cols());
    }
  });
  Clock::time_point t1;
  if (timed) t1 = Clock::now();
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(items.rows()));
  for (int32_t i = 0; i < items.rows(); ++i) {
    if (std::binary_search(seen.begin(), seen.end(), i)) continue;
    scored.push_back({i, scores[static_cast<size_t>(i)]});
  }
  SelectTopK(scored, k);
  if (timed) {
    const Clock::time_point t2 = Clock::now();
    if (compute_seconds != nullptr) {
      *compute_seconds = std::chrono::duration<double>(t1 - t0).count();
    }
    if (rank_seconds != nullptr) {
      *rank_seconds = std::chrono::duration<double>(t2 - t1).count();
    }
  }
  return scored;
}

inline std::vector<ScoredItem> TopKUnseenItems(
    const float* u, const ag::Tensor& items,
    const std::vector<int32_t>& seen, int k) {
  return TopKUnseenItemsTimed(u, items, seen, k, nullptr, nullptr);
}

// Read-only view over an embedding matrix that is EITHER a dense fp32
// tensor or a quantized section — the one type the engine's scoring paths
// rank against, so brute-force and IVF candidate scans share code across
// both storage formats. Non-owning; the snapshot outlives the view.
class EmbeddingView {
 public:
  EmbeddingView() = default;
  explicit EmbeddingView(const ag::Tensor* dense) : dense_(dense) {}
  explicit EmbeddingView(const quant::QuantizedMatrix* q) : quant_(q) {}

  int64_t rows() const {
    return dense_ != nullptr ? dense_->rows()
           : quant_ != nullptr ? quant_->rows
                               : 0;
  }
  int64_t cols() const {
    return dense_ != nullptr ? dense_->cols()
           : quant_ != nullptr ? quant_->cols
                               : 0;
  }
  bool dense() const { return dense_ != nullptr; }
  const ag::Tensor* dense_tensor() const { return dense_; }

  // dot(u, row r) — exact for dense, approximate (codec precision) for
  // quantized storage.
  float Score(const float* u, int64_t r) const {
    return dense_ != nullptr ? Dot(u, dense_->row(r), dense_->cols())
                             : quant_->Dot(u, r);
  }

  // Materializes row r as fp32 into `out` (cols() floats) — the exact
  // rerank path decodes shortlist rows through this.
  void DecodeRow(int64_t r, float* out) const {
    if (dense_ != nullptr) {
      const float* row = dense_->row(r);
      std::copy(row, row + dense_->cols(), out);
    } else {
      quant_->DequantizeRow(r, out);
    }
  }

 private:
  const ag::Tensor* dense_ = nullptr;
  const quant::QuantizedMatrix* quant_ = nullptr;
};

// Top-k unseen items scored against `view` — the storage- and
// candidate-generic variant of TopKUnseenItemsTimed. `candidates` null
// scans the full catalog; non-null scans only those ids (the IVF
// shortlist path). For quantized views a two-phase rank runs: the
// (approximate) quantized scores select a shortlist of
// max(rerank, k) survivors, whose rows are then decoded to fp32 and
// re-scored exactly — so codec noise can demote items INTO the shortlist
// boundary but never reorders the final top-k within it. Dense views skip
// the rerank (their scores are already exact) and, on a full-catalog
// scan, match TopKUnseenItemsTimed bit-for-bit.
inline std::vector<ScoredItem> TopKUnseenFromView(
    const float* u, const EmbeddingView& view,
    const std::vector<int32_t>* candidates,
    const std::vector<int32_t>& seen, int k, int rerank,
    double* compute_seconds, double* rank_seconds) {
  using Clock = std::chrono::steady_clock;
  const bool timed = compute_seconds != nullptr || rank_seconds != nullptr;
  Clock::time_point t0;
  if (timed) t0 = Clock::now();
  const int64_t n = candidates != nullptr
                        ? static_cast<int64_t>(candidates->size())
                        : view.rows();
  std::vector<float> scores(static_cast<size_t>(n));
  util::ParallelFor(0, n, kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      const int64_t row =
          candidates != nullptr ? (*candidates)[static_cast<size_t>(i)] : i;
      scores[static_cast<size_t>(i)] = view.Score(u, row);
    }
  });
  Clock::time_point t1;
  if (timed) t1 = Clock::now();
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int32_t item = candidates != nullptr
                             ? (*candidates)[static_cast<size_t>(i)]
                             : static_cast<int32_t>(i);
    if (std::binary_search(seen.begin(), seen.end(), item)) continue;
    scored.push_back({item, scores[static_cast<size_t>(i)]});
  }
  if (view.dense()) {
    SelectTopK(scored, k);
  } else {
    SelectTopK(scored, std::max(rerank, k));
    // Exact rerank: decode each surviving row to fp32 and re-score with
    // the same dispatched Dot both scoring surfaces use. Serial loop —
    // deterministic for any thread count.
    std::vector<float> row(static_cast<size_t>(view.cols()));
    for (ScoredItem& s : scored) {
      view.DecodeRow(s.item, row.data());
      s.score = Dot(u, row.data(), view.cols());
    }
    SelectTopK(scored, k);
  }
  if (timed) {
    const Clock::time_point t2 = Clock::now();
    if (compute_seconds != nullptr) {
      *compute_seconds = std::chrono::duration<double>(t1 - t0).count();
    }
    if (rank_seconds != nullptr) {
      *rank_seconds = std::chrono::duration<double>(t2 - t1).count();
    }
  }
  return scored;
}

// Per-row L2 norms of `m` — precomputed once by both scoring surfaces so
// SimilarUsers never re-derives norms inside the scan.
inline std::vector<float> ComputeRowNorms(const ag::Tensor& m) {
  std::vector<float> norms(static_cast<size_t>(m.rows()));
  util::ParallelFor(0, m.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t r = b; r < e; ++r) {
      const float* row = m.row(r);
      norms[static_cast<size_t>(r)] = std::sqrt(Dot(row, row, m.cols()));
    }
  });
  return norms;
}

// View overload: dense views delegate to the tensor variant (bit-parity
// with the seed path); quantized views decode per chunk and take the
// norm of the decoded fp32 row, matching what the exact-rerank path
// scores against.
inline std::vector<float> ComputeRowNorms(const EmbeddingView& m) {
  if (m.dense()) return ComputeRowNorms(*m.dense_tensor());
  std::vector<float> norms(static_cast<size_t>(m.rows()));
  util::ParallelFor(0, m.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    std::vector<float> row(static_cast<size_t>(m.cols()));
    for (int64_t r = b; r < e; ++r) {
      m.DecodeRow(r, row.data());
      norms[static_cast<size_t>(r)] =
          std::sqrt(Dot(row.data(), row.data(), m.cols()));
    }
  });
  return norms;
}

// Top-k users most similar to `user` by cosine over `users` rows
// (excluding `user` itself), with `norms` the precomputed per-row L2
// norms from ComputeRowNorms.
inline std::vector<ScoredItem> SimilarUsersByCosine(
    int32_t user, const ag::Tensor& users, const std::vector<float>& norms,
    int k) {
  const float* u = users.row(user);
  const float u_norm = norms[static_cast<size_t>(user)];
  std::vector<float> scores(static_cast<size_t>(users.rows()));
  util::ParallelFor(0, users.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t v = b; v < e; ++v) {
      const float denom = u_norm * norms[static_cast<size_t>(v)];
      scores[static_cast<size_t>(v)] =
          denom > 1e-12f ? Dot(u, users.row(v), users.cols()) / denom : 0.0f;
    }
  });
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(users.rows()) - 1);
  for (int32_t v = 0; v < users.rows(); ++v) {
    if (v == user) continue;
    scored.push_back({v, scores[static_cast<size_t>(v)]});
  }
  SelectTopK(scored, k);
  return scored;
}

// View overload: `u` is the query user's fp32 row (callers decode it
// once), scores are quantized-or-dense dots against every other user.
// Dense views produce the same scores as the tensor variant.
inline std::vector<ScoredItem> SimilarUsersByCosine(
    int32_t user, const float* u, const EmbeddingView& users,
    const std::vector<float>& norms, int k) {
  const float u_norm = norms[static_cast<size_t>(user)];
  std::vector<float> scores(static_cast<size_t>(users.rows()));
  util::ParallelFor(0, users.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t v = b; v < e; ++v) {
      const float denom = u_norm * norms[static_cast<size_t>(v)];
      scores[static_cast<size_t>(v)] =
          denom > 1e-12f ? users.Score(u, v) / denom : 0.0f;
    }
  });
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(users.rows()) - 1);
  for (int32_t v = 0; v < users.rows(); ++v) {
    if (v == user) continue;
    scored.push_back({v, scores[static_cast<size_t>(v)]});
  }
  SelectTopK(scored, k);
  return scored;
}

// Partial-scan variant for sharded serving: the query vector and its
// precomputed norm arrive from the caller (typically another shard via
// the router), so every shard divides by the exact same float and the
// scatter/gathered result merges bit-identically with the single-process
// scan. `exclude_row` (-1 = none) skips the query user's own row when
// this view happens to hold it. Returned items are ROW indices into
// `users`; the caller maps them to global ids.
inline std::vector<ScoredItem> SimilarUsersPartial(
    const float* u, float u_norm, const EmbeddingView& users,
    const std::vector<float>& norms, int64_t exclude_row, int k) {
  std::vector<float> scores(static_cast<size_t>(users.rows()));
  util::ParallelFor(0, users.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t v = b; v < e; ++v) {
      const float denom = u_norm * norms[static_cast<size_t>(v)];
      scores[static_cast<size_t>(v)] =
          denom > 1e-12f ? users.Score(u, v) / denom : 0.0f;
    }
  });
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(users.rows()));
  for (int32_t v = 0; v < users.rows(); ++v) {
    if (v == exclude_row) continue;
    scored.push_back({v, scores[static_cast<size_t>(v)]});
  }
  SelectTopK(scored, k);
  return scored;
}

}  // namespace dgnn::serve

#endif  // DGNN_SERVE_RANKING_H_
