// ServingEngine — the online half of the serving split: loads embedding
// snapshots (serve/snapshot.h) and answers TopK / Score / SimilarUsers
// requests from many threads at once.
//
// Properties:
//  - Zero-downtime hot swap. The active snapshot (plus state derived
//    from it: per-user norms, the popularity ranking) lives behind a
//    shared_ptr that Swap()/Load() replace atomically; in-flight
//    requests finish on the snapshot they started with, new requests see
//    the new one. Nothing blocks on a swap.
//  - Micro-batching. Handle() coalesces requests that arrive while a
//    batch is being executed: the first caller becomes the batch leader
//    and drains the queue through the shared util::ThreadPool; followers
//    wait for their slot to complete. Under concurrent load this turns N
//    single-request calls into a few parallel batches with no timers.
//  - LRU cache of the per-user scoring vector (the social-recalibrated
//    user embedding when social_alpha > 0, the raw row otherwise),
//    invalidated wholesale on snapshot swap.
//  - Graceful degradation. Unknown/cold users get the popularity ranking
//    (train interaction counts from the snapshot) instead of an error;
//    responses carry a `degraded` flag. Malformed requests (k <= 0,
//    unknown op) yield ok=false responses, never a crash.
//  - Overload control. With max_queue > 0, a request arriving while a
//    leader is draining and the follower queue is full is SHED: it gets
//    an immediate ok=false "overloaded" response instead of adding
//    unbounded latency for everyone. Per-request deadlines (or the
//    config default) are stamped at admission; a request whose deadline
//    passed while it queued fails fast with "deadline exceeded" rather
//    than burning batch capacity on an answer its client stopped
//    waiting for.
//  - Determinism. With social_alpha == 0 (the default) results are
//    bit-identical to a direct train::Recommender over the same
//    parameters for any thread count and any batching — both rank
//    through serve/ranking.h.
//
// Telemetry (when telemetry::Enabled()): counters serve.cache_hits,
// serve.cache_misses, serve.snapshot_swaps, serve.degraded_requests,
// serve.requests, serve.batches, serve.shed_requests,
// serve.expired_requests; gauge serve.queue_depth; histogram
// serve.request_seconds. The same values are always available
// programmatically via stats().

#ifndef DGNN_SERVE_ENGINE_H_
#define DGNN_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/ranking.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace dgnn::serve {

struct EngineConfig {
  // LRU entries for per-user scoring vectors; <= 0 disables the cache.
  int cache_capacity = 4096;
  // Serve-time social recalibration (DiffNet-style influence smoothing
  // without re-running the encoder): the scoring vector becomes
  // (1 - alpha) * e_u + alpha * mean(e_v for social neighbors v). 0 keeps
  // the raw embedding and bit-identical parity with train::Recommender.
  float social_alpha = 0.0f;
  // Admission bound for the micro-batch follower queue: a request that
  // arrives while a leader is draining and max_queue followers are
  // already waiting is shed with an ok=false "overloaded" response.
  // <= 0 (default) keeps the queue unbounded.
  int max_queue = 0;
  // Default per-request deadline in milliseconds, stamped at admission;
  // a request still queued past its deadline fails fast with "deadline
  // exceeded". Request::timeout_ms overrides per request. <= 0 disables.
  int64_t default_deadline_ms = 0;
};

struct Request {
  enum class Type { kTopK, kScore, kSimilarUsers };
  Type type = Type::kTopK;
  int32_t user = 0;
  int32_t item = 0;  // kScore only
  int k = 10;        // kTopK / kSimilarUsers
  // Per-request deadline override in milliseconds (0 = use the config
  // default; < 0 = explicitly no deadline).
  int64_t timeout_ms = 0;
};

struct Response {
  bool ok = false;
  std::string error;  // set when !ok
  std::vector<ScoredItem> items;  // kTopK / kSimilarUsers
  float score = 0.0f;             // kScore
  // True when the engine fell back (unknown user/item -> popularity or
  // neutral score) instead of failing the request.
  bool degraded = false;
  // Swap count of the snapshot that served this request (1 = first
  // loaded snapshot); lets clients observe hot swaps.
  int64_t snapshot_version = 0;
};

// Monotonic totals since construction (independent of telemetry being
// enabled); hit/miss only move when the cache is enabled.
struct EngineStats {
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t snapshot_swaps = 0;
  int64_t degraded_requests = 0;
  // Requests refused at admission because the follower queue was full.
  int64_t shed_requests = 0;
  // Requests whose deadline passed before execution started.
  int64_t expired_requests = 0;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig config = {});

  // Reads and fully validates the snapshot file, then swaps it in. On
  // error the engine keeps serving its current snapshot.
  util::Status Load(const std::string& path);

  // Swaps in an already-built snapshot. In-flight requests complete on
  // the old one; the user-vector cache is invalidated.
  void Swap(std::shared_ptr<const Snapshot> snapshot);

  // Snapshot currently being served (nullptr before the first Load/Swap).
  std::shared_ptr<const Snapshot> snapshot() const;
  // Number of successful Load/Swap calls so far.
  int64_t swap_count() const;

  // Serves one request, micro-batched with concurrent Handle() callers.
  // Never CHECK-fails on request content: errors come back as ok=false.
  Response Handle(const Request& request);

  // Serves a batch directly (parallel across requests, one snapshot
  // acquisition). Response i answers request i.
  std::vector<Response> HandleBatch(const std::vector<Request>& requests);

  EngineStats stats() const;
  const EngineConfig& config() const { return config_; }

 private:
  // Everything derived from one snapshot, immutable once published.
  struct State {
    std::shared_ptr<const Snapshot> snap;
    std::vector<float> user_norms;
    // Item ids sorted by (train count desc, id asc) — the degraded-path
    // ranking for unknown users.
    std::vector<ScoredItem> popularity;
    int64_t version = 0;
  };

  struct Slot {
    const Request* request = nullptr;
    Response response;
    bool done = false;
    // Deadline stamped at admission; checked immediately before Execute.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  std::shared_ptr<const State> AcquireState() const;
  // Stamps Slot::deadline from request/config; no-op when both disable it.
  void StampDeadline(Slot* slot) const;
  void ExecuteBatch(const State* state, Slot** slots, size_t n);
  Response Execute(const State* state, const Request& request);
  // The (possibly recalibrated) vector used to score for `user`, served
  // from the LRU cache when enabled.
  std::vector<float> UserVector(const State& state, int32_t user);
  std::vector<float> ComputeUserVector(const State& state,
                                       int32_t user) const;
  void CountDegraded();

  const EngineConfig config_;

  mutable std::mutex state_mu_;
  std::shared_ptr<const State> state_;
  std::atomic<int64_t> swap_count_{0};

  // Micro-batch queue (leader/follower; see Handle() in the .cc).
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::vector<Slot*> queue_;
  bool leader_active_ = false;

  // LRU: most-recently-used at the front. Guarded by cache_mu_; the
  // cached vectors belong to snapshot version cache_version_ and are
  // dropped wholesale when it trails the active state.
  mutable std::mutex cache_mu_;
  std::list<std::pair<int32_t, std::vector<float>>> lru_;
  std::unordered_map<int32_t,
                     std::list<std::pair<int32_t, std::vector<float>>>::
                         iterator>
      cache_index_;
  int64_t cache_version_ = 0;

  std::atomic<int64_t> n_requests_{0};
  std::atomic<int64_t> n_batches_{0};
  std::atomic<int64_t> n_cache_hits_{0};
  std::atomic<int64_t> n_cache_misses_{0};
  std::atomic<int64_t> n_degraded_{0};
  std::atomic<int64_t> n_shed_{0};
  std::atomic<int64_t> n_expired_{0};
};

}  // namespace dgnn::serve

#endif  // DGNN_SERVE_ENGINE_H_
