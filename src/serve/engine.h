// ServingEngine — the online half of the serving split: loads embedding
// snapshots (serve/snapshot.h) and answers TopK / Score / SimilarUsers
// requests from many threads at once.
//
// Properties:
//  - Zero-downtime hot swap. The active snapshot (plus state derived
//    from it: per-user norms, the popularity ranking) lives behind a
//    shared_ptr that Swap()/Load() replace atomically; in-flight
//    requests finish on the snapshot they started with, new requests see
//    the new one. Nothing blocks on a swap.
//  - Micro-batching. Handle() coalesces requests that arrive while a
//    batch is being executed: the first caller becomes the batch leader
//    and drains the queue through the shared util::ThreadPool; followers
//    wait for their slot to complete. Under concurrent load this turns N
//    single-request calls into a few parallel batches with no timers.
//  - LRU cache of the per-user scoring vector (the social-recalibrated
//    user embedding when social_alpha > 0, the raw row otherwise),
//    invalidated wholesale on snapshot swap.
//  - Graceful degradation. Unknown/cold users get the popularity ranking
//    (train interaction counts from the snapshot) instead of an error;
//    responses carry a `degraded` flag. Malformed requests (k <= 0,
//    unknown op) yield ok=false responses, never a crash.
//  - Overload control. With max_queue > 0, a request arriving while a
//    leader is draining and the follower queue is full is SHED: it gets
//    an immediate ok=false "overloaded" response instead of adding
//    unbounded latency for everyone. Per-request deadlines (or the
//    config default) are stamped at admission; a request whose deadline
//    passed while it queued fails fast with "deadline exceeded" rather
//    than burning batch capacity on an answer its client stopped
//    waiting for.
//  - Determinism. With social_alpha == 0 (the default) results are
//    bit-identical to a direct train::Recommender over the same
//    parameters for any thread count and any batching — both rank
//    through serve/ranking.h.
//
// Telemetry (when telemetry::Enabled()): counters serve.cache_hits,
// serve.cache_misses, serve.snapshot_swaps, serve.degraded_requests,
// serve.requests, serve.batches, serve.shed_requests,
// serve.expired_requests, serve.failed_requests; gauge
// serve.queue_depth; histograms serve.request_seconds (Handle() wall
// time, shed included), serve.e2e_seconds (admission -> response
// handoff for executed requests) and the per-stage breakdown
// serve.stage.{queue,recal,compute,rank,reply}_seconds, whose per-stage
// sums reconcile with serve.e2e_seconds. The same values are always
// available programmatically via stats() / windows().
//
// Observability plane: every request gets a monotonic trace id at
// admission (survives hot swaps; returned in Response::trace_id), stage
// timestamps are kept per slot when anything is observing, a background
// sampler (StartSampler) folds 1 s deltas into rolling windows
// (telemetry::WindowedStats) with SLO burn accounting, and a TraceSink
// receives sampled per-request RequestTrace records.

#ifndef DGNN_SERVE_ENGINE_H_
#define DGNN_SERVE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/ranking.h"
#include "serve/snapshot.h"
#include "util/status.h"
#include "util/windowed_stats.h"

namespace dgnn::serve {

struct EngineConfig {
  // LRU entries for per-user scoring vectors; <= 0 disables the cache.
  int cache_capacity = 4096;
  // Serve-time social recalibration (DiffNet-style influence smoothing
  // without re-running the encoder): the scoring vector becomes
  // (1 - alpha) * e_u + alpha * mean(e_v for social neighbors v). 0 keeps
  // the raw embedding and bit-identical parity with train::Recommender.
  float social_alpha = 0.0f;
  // Admission bound for the micro-batch follower queue: a request that
  // arrives while a leader is draining and max_queue followers are
  // already waiting is shed with an ok=false "overloaded" response.
  // <= 0 (default) keeps the queue unbounded.
  int max_queue = 0;
  // Default per-request deadline in milliseconds, stamped at admission;
  // a request still queued past its deadline fails fast with "deadline
  // exceeded". Request::timeout_ms overrides per request. <= 0 disables.
  int64_t default_deadline_ms = 0;

  // --- Quantized snapshots & IVF retrieval ---
  // Coarse lists probed per TopK request when the snapshot carries an
  // IVF index. <= 0 keeps the brute-force full-catalog scan even when an
  // index is present (the safe default — identical results, linear cost).
  int nprobe = 0;
  // Shortlist size exact-reranked in fp32 after the quantized/IVF
  // candidate scan; <= 0 picks max(4 * k, 64) per request. Larger values
  // trade latency for recall.
  int rerank = 0;

  // --- Observability plane (README "Live observability") ---
  // Period of the background windowed-stats sampler thread; <= 0 leaves
  // it stopped until StartSampler() is called explicitly.
  int sampler_period_ms = 0;
  // Fraction of requests emitted to the trace sink, decided
  // deterministically from the trace id (a hash threshold, not a RNG) so
  // replays sample the same requests. 1 = every request, 0 = none.
  double trace_sample_rate = 1.0;
  // SLO thresholds feeding the windowed burn-rate counters; <= 0
  // disables the corresponding accounting. p99 is judged per 1 s-window
  // against slo_p99_ms; availability (ok / admitted) against
  // slo_availability.
  double slo_p99_ms = 0.0;
  double slo_availability = 0.0;
};

struct Request {
  // kTopK/kScore/kSimilarUsers are the client-facing ops. The k*Partial
  // and kUserVector/kScoreItem ops are the shard-worker vocabulary the
  // router speaks (src/shard/): kUserVector fetches the owning shard's
  // scoring vector, the partial ops rank THIS shard's item/user slice
  // against a caller-supplied query vector, and kScoreItem scores one
  // globally-addressed item. Item ids in partial responses are global.
  enum class Type {
    kTopK,
    kScore,
    kSimilarUsers,
    kUserVector,
    kTopKPartial,
    kSimilarPartial,
    kScoreItem,
  };
  Type type = Type::kTopK;
  int32_t user = 0;
  int32_t item = 0;  // kScore / kScoreItem
  int k = 10;        // kTopK / kSimilarUsers / partials
  // Per-request deadline override in milliseconds (0 = use the config
  // default; < 0 = explicitly no deadline).
  int64_t timeout_ms = 0;
  // Query vector for the partial / kScoreItem ops (the user's scoring
  // vector, fetched from the owning shard). Must match the embedding dim.
  std::vector<float> query;
  // Precomputed norm of `query` (kSimilarPartial cosine denominator) —
  // passed through so every shard divides by the exact same float.
  float query_norm = 0.0f;
  // kTopKPartial only: rank this shard's slice of the popularity
  // fallback instead of scoring `query` (down/unknown user-shard path).
  bool popularity = false;
};

struct Response {
  bool ok = false;
  std::string error;  // set when !ok
  std::vector<ScoredItem> items;  // kTopK / kSimilarUsers
  float score = 0.0f;             // kScore
  // True when the engine fell back (unknown user/item -> popularity or
  // neutral score) instead of failing the request.
  bool degraded = false;
  // Swap count of the snapshot that served this request (1 = first
  // loaded snapshot); lets clients observe hot swaps.
  int64_t snapshot_version = 0;
  // Engine-unique id assigned at admission (1-based, monotonic across
  // snapshot swaps); keys the per-request trace record when sampled.
  int64_t trace_id = 0;
  // kUserVector only: the scoring vector and its norm.
  std::vector<float> vector;
  float vector_norm = 0.0f;
  // Router-filled on degraded scatter/gathers: indices of the shards
  // whose slice is missing from (or substituted in) this answer.
  std::vector<int32_t> missing_shards;
};

// One sampled request's stage breakdown, pushed to the trace sink set by
// SetTraceSink(). Stage seconds partition the request's lifetime:
// queue (admission -> batch execution start, which includes batch
// formation and any pre-batch stall), recal (user-vector recalibration /
// cache lookup), compute (parallel catalog scan), rank (filter + top-k
// select), reply (execution end -> response handoff). Their sum is <=
// total_seconds by construction (per-slot bookkeeping inside the batch
// is the remainder).
struct RequestTrace {
  int64_t trace_id = 0;
  // Admission timestamp in microseconds on the telemetry trace-epoch
  // clock (lines up with exported chrome://tracing spans).
  int64_t ts_us = 0;
  const char* type = "topk";     // "topk" | "score" | "similar_users"
  const char* outcome = "ok";    // "ok" | "shed" | "expired" | "failed"
  int32_t user = 0;
  int k = 0;
  int batch_size = 0;            // slots in the executing batch; 0 = shed
  int64_t snapshot_version = 0;
  bool degraded = false;
  double queue_seconds = 0.0;
  double recal_seconds = 0.0;
  double compute_seconds = 0.0;
  double rank_seconds = 0.0;
  double reply_seconds = 0.0;
  double total_seconds = 0.0;
};

// Monotonic totals since construction (independent of telemetry being
// enabled); hit/miss only move when the cache is enabled.
struct EngineStats {
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t snapshot_swaps = 0;
  int64_t degraded_requests = 0;
  // Requests refused at admission because the follower queue was full.
  int64_t shed_requests = 0;
  // Requests whose deadline passed before execution started.
  int64_t expired_requests = 0;
  // Executed requests that came back ok=false for a reason other than an
  // expired deadline (failpoint errors, no snapshot, malformed k).
  int64_t failed_requests = 0;
};

class ServingEngine {
 public:
  using TraceSink = std::function<void(const RequestTrace&)>;

  explicit ServingEngine(EngineConfig config = {});
  // Stops and joins the sampler thread if it is running.
  ~ServingEngine();

  // Reads and fully validates the snapshot file, then swaps it in. On
  // error the engine keeps serving its current snapshot.
  util::Status Load(const std::string& path);

  // Swaps in an already-built snapshot. In-flight requests complete on
  // the old one; the user-vector cache is invalidated.
  void Swap(std::shared_ptr<const Snapshot> snapshot);

  // Snapshot currently being served (nullptr before the first Load/Swap).
  std::shared_ptr<const Snapshot> snapshot() const;
  // Number of successful Load/Swap calls so far.
  int64_t swap_count() const;

  // Serves one request, micro-batched with concurrent Handle() callers.
  // Never CHECK-fails on request content: errors come back as ok=false.
  Response Handle(const Request& request);

  // Serves a batch directly (parallel across requests, one snapshot
  // acquisition). Response i answers request i.
  std::vector<Response> HandleBatch(const std::vector<Request>& requests);

  EngineStats stats() const;
  const EngineConfig& config() const { return config_; }

  // Followers currently waiting in the micro-batch queue — the shard
  // probe's instantaneous load signal.
  int64_t queue_depth() const {
    std::lock_guard<std::mutex> lock(batch_mu_);
    return static_cast<int64_t>(queue_.size());
  }

  // --- Observability plane ---

  // Installs (or clears, with nullptr-like empty function) the sampled
  // per-request trace sink. The sink is invoked inline on the serving
  // thread for requests selected by trace_sample_rate — keep it cheap
  // (an appending JSONL write is the intended shape). Thread-safe.
  void SetTraceSink(TraceSink sink);

  // Starts the background windowed-stats sampler (idempotent).
  // period_ms <= 0 uses config().sampler_period_ms, or 1000 if that is
  // also unset. StopSampler() joins the thread; the destructor calls it.
  void StartSampler(int period_ms = 0);
  void StopSampler();
  bool sampler_running() const {
    return sampler_running_.load(std::memory_order_relaxed);
  }

  // Takes one synchronous sampler tick of `seconds` nominal duration —
  // the deterministic path tests use instead of racing the thread.
  void SampleOnceForTest(double seconds = 1.0);

  // Rolling 1 s/10 s/60 s windows fed by the sampler. Present from
  // construction; empty until the sampler (or SampleOnceForTest) ticks.
  const telemetry::WindowedStats& windows() const { return *windows_; }

 private:
  // Everything derived from one snapshot, immutable once published.
  struct State {
    std::shared_ptr<const Snapshot> snap;
    // Storage-generic views over the snapshot's embeddings (dense fp32 or
    // quantized section); every scoring path ranks through these.
    EmbeddingView users_view;
    EmbeddingView items_view;
    std::vector<float> user_norms;
    // Item ids sorted by (train count desc, id asc) — the degraded-path
    // ranking for unknown users. Ids are GLOBAL (offset applied for
    // sharded snapshots).
    std::vector<ScoredItem> popularity;
    int64_t version = 0;

    // Sharded-snapshot addressing. For ordinary snapshots these are the
    // identity: global counts equal the tensor shapes, item_offset is 0
    // and `owned` is empty (every user id is its own row).
    int64_t num_users_global = 0;
    int64_t num_items_global = 0;
    int64_t item_offset = 0;
    std::vector<int32_t> owned;  // global ids of locally-held users, asc

    // Row of `user` in users_view, or -1 when this shard does not hold
    // it. Caller must have bounds-checked user against num_users_global.
    int64_t LocalUserRow(int32_t user) const {
      if (owned.empty()) return user;
      auto it = std::lower_bound(owned.begin(), owned.end(), user);
      return (it != owned.end() && *it == user)
                 ? static_cast<int64_t>(it - owned.begin())
                 : -1;
    }
  };

  // Per-slot stage timestamps; `active` is decided once at admission
  // (false when nothing is observing, so the request path reads no
  // clocks beyond what it always did).
  struct StageTimes {
    bool active = false;
    std::chrono::steady_clock::time_point admit;
    std::chrono::steady_clock::time_point exec_start;
    std::chrono::steady_clock::time_point exec_end;
    double recal_seconds = 0.0;
    double compute_seconds = 0.0;
    double rank_seconds = 0.0;
  };

  enum class Outcome { kOk, kShed, kExpired, kFailed };

  struct Slot {
    const Request* request = nullptr;
    Response response;
    bool done = false;
    // Deadline stamped at admission; checked immediately before Execute.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    int64_t trace_id = 0;
    StageTimes stages;
    Outcome outcome = Outcome::kOk;
    int batch_size = 0;
  };

  std::shared_ptr<const State> AcquireState() const;
  // Stamps Slot::deadline from request/config; no-op when both disable it.
  void StampDeadline(Slot* slot) const;
  // Admission bookkeeping shared by Handle/HandleBatch: trace id, stage
  // activation + admit stamp, deadline.
  void AdmitSlot(Slot* slot);
  // True when some consumer (telemetry export, the windowed sampler, or
  // a trace sink) will read stage timings.
  bool Observing() const;
  // Completion bookkeeping: records stage + end-to-end histograms and
  // emits the sampled trace record. Sets Response::trace_id.
  void FinishSlot(Slot* slot);
  void ExecuteBatch(const State* state, Slot** slots, size_t n);
  Response Execute(const State* state, const Request& request,
                   StageTimes* stages);
  // One sampler tick: pushes the counter/latency deltas since the
  // previous tick into windows_ as a sample of `seconds` duration.
  void SampleOnce(double seconds);
  // The (possibly recalibrated) vector used to score for `user`, served
  // from the LRU cache when enabled.
  std::vector<float> UserVector(const State& state, int32_t user);
  std::vector<float> ComputeUserVector(const State& state,
                                       int32_t user) const;
  void CountDegraded();

  const EngineConfig config_;

  mutable std::mutex state_mu_;
  std::shared_ptr<const State> state_;
  std::atomic<int64_t> swap_count_{0};

  // Micro-batch queue (leader/follower; see Handle() in the .cc).
  // mutable so the const queue_depth() accessor can lock it.
  mutable std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::vector<Slot*> queue_;
  bool leader_active_ = false;

  // LRU: most-recently-used at the front. Guarded by cache_mu_; the
  // cached vectors belong to snapshot version cache_version_ and are
  // dropped wholesale when it trails the active state.
  mutable std::mutex cache_mu_;
  std::list<std::pair<int32_t, std::vector<float>>> lru_;
  std::unordered_map<int32_t,
                     std::list<std::pair<int32_t, std::vector<float>>>::
                         iterator>
      cache_index_;
  int64_t cache_version_ = 0;

  std::atomic<int64_t> n_requests_{0};
  std::atomic<int64_t> n_batches_{0};
  std::atomic<int64_t> n_cache_hits_{0};
  std::atomic<int64_t> n_cache_misses_{0};
  std::atomic<int64_t> n_degraded_{0};
  std::atomic<int64_t> n_shed_{0};
  std::atomic<int64_t> n_expired_{0};
  std::atomic<int64_t> n_failed_{0};

  // --- Observability plane ---
  std::atomic<int64_t> next_trace_id_{0};

  // Engine-owned stage/end-to-end histograms (instantiated directly, not
  // through the global registry) so windowed stats work even when
  // process-wide telemetry is disabled; mirrored into serve.stage.* /
  // serve.e2e_seconds registry histograms when telemetry::Enabled().
  telemetry::Histogram e2e_hist_;
  telemetry::Histogram stage_queue_;
  telemetry::Histogram stage_recal_;
  telemetry::Histogram stage_compute_;
  telemetry::Histogram stage_rank_;
  telemetry::Histogram stage_reply_;

  std::mutex sink_mu_;
  TraceSink sink_;
  std::atomic<bool> has_sink_{false};

  std::unique_ptr<telemetry::WindowedStats> windows_;
  // Cursor of "counts as of the previous tick" for delta samples; only
  // SampleOnce touches it, serialized by sample_mu_.
  struct SampleCursor {
    int64_t requests = 0, shed = 0, expired = 0, failed = 0;
    int64_t degraded = 0, swaps = 0, cache_hits = 0, cache_misses = 0;
    telemetry::Histogram::Counts latency;
  };
  std::mutex sample_mu_;
  SampleCursor cursor_;

  std::thread sampler_thread_;
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::atomic<bool> sampler_running_{false};
};

}  // namespace dgnn::serve

#endif  // DGNN_SERVE_ENGINE_H_
