#include "serve/engine.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::serve {
namespace {

// Registered once; Add() calls are guarded by telemetry::Enabled() per
// the repo convention (engine-internal atomics track totals regardless).
struct ServeMetrics {
  telemetry::Counter* requests = telemetry::GetCounter("serve.requests");
  telemetry::Counter* batches = telemetry::GetCounter("serve.batches");
  telemetry::Counter* cache_hits =
      telemetry::GetCounter("serve.cache_hits");
  telemetry::Counter* cache_misses =
      telemetry::GetCounter("serve.cache_misses");
  telemetry::Counter* swaps =
      telemetry::GetCounter("serve.snapshot_swaps");
  telemetry::Counter* degraded =
      telemetry::GetCounter("serve.degraded_requests");
  telemetry::Counter* shed = telemetry::GetCounter("serve.shed_requests");
  telemetry::Counter* expired =
      telemetry::GetCounter("serve.expired_requests");
  telemetry::Counter* failed =
      telemetry::GetCounter("serve.failed_requests");
  telemetry::Gauge* queue_depth = telemetry::GetGauge("serve.queue_depth");
  telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.request_seconds");
  telemetry::Histogram* e2e = telemetry::GetHistogram("serve.e2e_seconds");
  telemetry::Histogram* stage_queue =
      telemetry::GetHistogram("serve.stage.queue_seconds");
  telemetry::Histogram* stage_recal =
      telemetry::GetHistogram("serve.stage.recal_seconds");
  telemetry::Histogram* stage_compute =
      telemetry::GetHistogram("serve.stage.compute_seconds");
  telemetry::Histogram* stage_rank =
      telemetry::GetHistogram("serve.stage.rank_seconds");
  telemetry::Histogram* stage_reply =
      telemetry::GetHistogram("serve.stage.reply_seconds");
};

ServeMetrics& Metrics() {
  static ServeMetrics* m = new ServeMetrics();
  return *m;
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Deterministic finalizing hash: the trace-sampling decision depends only
// on the trace id, so a replayed workload samples the same requests.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool TraceSampled(int64_t trace_id, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  const double threshold = rate * 18446744073709551616.0;  // rate * 2^64
  return static_cast<double>(
             SplitMix64(static_cast<uint64_t>(trace_id))) < threshold;
}

const char* RequestTypeName(Request::Type t) {
  switch (t) {
    case Request::Type::kTopK: return "topk";
    case Request::Type::kScore: return "score";
    case Request::Type::kSimilarUsers: return "similar_users";
    case Request::Type::kUserVector: return "user_vector";
    case Request::Type::kTopKPartial: return "topk_partial";
    case Request::Type::kSimilarPartial: return "similar_partial";
    case Request::Type::kScoreItem: return "score_item";
  }
  return "?";
}

}  // namespace

ServingEngine::ServingEngine(EngineConfig config) : config_(config) {
  telemetry::WindowedStats::Config wcfg;
  wcfg.slo_p99_ms = config_.slo_p99_ms;
  wcfg.slo_availability = config_.slo_availability;
  windows_ = std::make_unique<telemetry::WindowedStats>(wcfg);
  if (config_.sampler_period_ms > 0) StartSampler();
}

ServingEngine::~ServingEngine() { StopSampler(); }

util::Status ServingEngine::Load(const std::string& path) {
  auto snapshot = ReadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  Swap(std::make_shared<const Snapshot>(std::move(snapshot).value()));
  return util::Status::Ok();
}

void ServingEngine::Swap(std::shared_ptr<const Snapshot> snapshot) {
  DGNN_CHECK(snapshot != nullptr);
  auto state = std::make_shared<State>();
  // Views point into *snapshot; state->snap keeps it alive for the
  // state's lifetime.
  state->users_view = snapshot->has_quant_users()
                          ? EmbeddingView(&snapshot->quant_users)
                          : EmbeddingView(&snapshot->users);
  state->items_view = snapshot->has_quant_items()
                          ? EmbeddingView(&snapshot->quant_items)
                          : EmbeddingView(&snapshot->items);
  state->user_norms = ComputeRowNorms(state->users_view);
  if (snapshot->shard.empty()) {
    // Unsharded: global addressing is the identity over the tensors (the
    // seed-era behavior, kept independent of whatever the meta says so
    // hand-built test snapshots keep working).
    state->num_users_global = state->users_view.rows();
    state->num_items_global = state->items_view.rows();
  } else {
    state->num_users_global = snapshot->meta.num_users;
    state->num_items_global = snapshot->meta.num_items;
    state->item_offset = snapshot->shard.item_begin;
    state->owned = OwnedUsers(snapshot->shard, snapshot->meta.num_users);
  }
  // Popularity carries GLOBAL item ids; for a shard this ranks only its
  // own slice (the router merges slices into the global ranking).
  const int32_t item_offset = static_cast<int32_t>(state->item_offset);
  state->popularity.reserve(snapshot->item_counts.size());
  for (size_t i = 0; i < snapshot->item_counts.size(); ++i) {
    state->popularity.push_back(
        {item_offset + static_cast<int32_t>(i),
         static_cast<float>(snapshot->item_counts[i])});
  }
  std::sort(state->popularity.begin(), state->popularity.end(),
            ScoreGreater);
  state->snap = std::move(snapshot);
  state->version = swap_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    // Concurrent swaps publish in version order; a racing older build
    // never clobbers a newer snapshot.
    if (state_ == nullptr || state->version > state_->version) {
      state_ = std::move(state);
    }
  }
  {
    // Invalidate eagerly so stale vectors don't pin the old snapshot's
    // memory; UserVector also re-checks the version lazily.
    std::lock_guard<std::mutex> lock(cache_mu_);
    lru_.clear();
    cache_index_.clear();
    cache_version_ = swap_count_.load(std::memory_order_relaxed);
  }
  if (telemetry::Enabled()) Metrics().swaps->Add(1);
}

std::shared_ptr<const Snapshot> ServingEngine::snapshot() const {
  auto state = AcquireState();
  return state == nullptr ? nullptr : state->snap;
}

int64_t ServingEngine::swap_count() const {
  return swap_count_.load(std::memory_order_relaxed);
}

std::shared_ptr<const ServingEngine::State> ServingEngine::AcquireState()
    const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

void ServingEngine::StampDeadline(Slot* slot) const {
  const int64_t timeout_ms = slot->request->timeout_ms != 0
                                 ? slot->request->timeout_ms
                                 : config_.default_deadline_ms;
  if (timeout_ms <= 0) return;
  slot->has_deadline = true;
  slot->deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(timeout_ms);
}

bool ServingEngine::Observing() const {
  return telemetry::Enabled() ||
         sampler_running_.load(std::memory_order_relaxed) ||
         has_sink_.load(std::memory_order_relaxed);
}

void ServingEngine::AdmitSlot(Slot* slot) {
  slot->trace_id =
      next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  slot->stages.active = Observing();
  if (slot->stages.active) {
    slot->stages.admit = std::chrono::steady_clock::now();
  }
  StampDeadline(slot);
}

void ServingEngine::FinishSlot(Slot* slot) {
  slot->response.trace_id = slot->trace_id;
  if (!slot->stages.active) return;
  const auto t_done = std::chrono::steady_clock::now();
  const double total = Seconds(slot->stages.admit, t_done);
  double queue_s = total;
  double reply_s = 0.0;
  if (slot->outcome != Outcome::kShed) {
    queue_s = Seconds(slot->stages.admit, slot->stages.exec_start);
    reply_s = Seconds(slot->stages.exec_end, t_done);
  }
  e2e_hist_.Record(total);
  stage_queue_.Record(queue_s);
  stage_recal_.Record(slot->stages.recal_seconds);
  stage_compute_.Record(slot->stages.compute_seconds);
  stage_rank_.Record(slot->stages.rank_seconds);
  stage_reply_.Record(reply_s);
  if (telemetry::Enabled()) {
    ServeMetrics& m = Metrics();
    m.e2e->Record(total);
    m.stage_queue->Record(queue_s);
    m.stage_recal->Record(slot->stages.recal_seconds);
    m.stage_compute->Record(slot->stages.compute_seconds);
    m.stage_rank->Record(slot->stages.rank_seconds);
    m.stage_reply->Record(reply_s);
  }
  if (has_sink_.load(std::memory_order_relaxed) &&
      TraceSampled(slot->trace_id, config_.trace_sample_rate)) {
    RequestTrace t;
    t.trace_id = slot->trace_id;
    // Admission timestamp on the trace-epoch clock, reconstructed from
    // the measured total so only sampled requests pay the epoch lookup.
    t.ts_us = telemetry::TraceNowMicros() -
              static_cast<int64_t>(total * 1e6);
    t.type = RequestTypeName(slot->request->type);
    switch (slot->outcome) {
      case Outcome::kOk: t.outcome = "ok"; break;
      case Outcome::kShed: t.outcome = "shed"; break;
      case Outcome::kExpired: t.outcome = "expired"; break;
      case Outcome::kFailed: t.outcome = "failed"; break;
    }
    t.user = slot->request->user;
    t.k = slot->request->k;
    t.batch_size = slot->batch_size;
    t.snapshot_version = slot->response.snapshot_version;
    t.degraded = slot->response.degraded;
    t.queue_seconds = queue_s;
    t.recal_seconds = slot->stages.recal_seconds;
    t.compute_seconds = slot->stages.compute_seconds;
    t.rank_seconds = slot->stages.rank_seconds;
    t.reply_seconds = reply_s;
    t.total_seconds = total;
    std::lock_guard<std::mutex> lock(sink_mu_);
    if (sink_) sink_(t);
  }
}

Response ServingEngine::Handle(const Request& request) {
  telemetry::ScopedLatency record_latency(Metrics().latency);
  Slot slot;
  slot.request = &request;
  AdmitSlot(&slot);
  std::unique_lock<std::mutex> lock(batch_mu_);
  if (leader_active_) {
    // Load shedding: a full follower queue means the leader is already
    // saturated; refusing NOW costs the client one fast round-trip,
    // while queueing would cost every queued request unbounded latency.
    if (config_.max_queue > 0 &&
        queue_.size() >= static_cast<size_t>(config_.max_queue)) {
      lock.unlock();
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::Enabled()) Metrics().shed->Add(1);
      slot.outcome = Outcome::kShed;
      slot.response = Response{};
      slot.response.error = "overloaded";
      FinishSlot(&slot);
      return std::move(slot.response);
    }
    queue_.push_back(&slot);
    if (telemetry::Enabled()) {
      Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    // A leader is already draining the queue; it will execute our slot
    // in one of its batches. Wait for completion.
    batch_cv_.wait(lock, [&] { return slot.done; });
    lock.unlock();
    FinishSlot(&slot);
    return std::move(slot.response);
  }
  queue_.push_back(&slot);
  // Become the leader: repeatedly swap out whatever has queued up
  // (including our own slot) and execute it as one parallel batch.
  // Requests arriving meanwhile queue behind us and form the next batch —
  // micro-batching driven purely by concurrency, no timers.
  leader_active_ = true;
  while (!queue_.empty()) {
    std::vector<Slot*> batch;
    batch.swap(queue_);
    if (telemetry::Enabled()) Metrics().queue_depth->Set(0.0);
    lock.unlock();
    auto state = AcquireState();
    ExecuteBatch(state.get(), batch.data(), batch.size());
    lock.lock();
    for (Slot* s : batch) s->done = true;
    batch_cv_.notify_all();
  }
  leader_active_ = false;
  lock.unlock();
  // The leader's own reply stage covers the full drain (its caller does
  // not get the response until every batch it led has completed).
  FinishSlot(&slot);
  return std::move(slot.response);
}

std::vector<Response> ServingEngine::HandleBatch(
    const std::vector<Request>& requests) {
  auto state = AcquireState();
  std::vector<Slot> slots(requests.size());
  std::vector<Slot*> ptrs(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    slots[i].request = &requests[i];
    AdmitSlot(&slots[i]);
    ptrs[i] = &slots[i];
  }
  ExecuteBatch(state.get(), ptrs.data(), ptrs.size());
  std::vector<Response> out;
  out.reserve(slots.size());
  for (Slot& s : slots) {
    FinishSlot(&s);
    out.push_back(std::move(s.response));
  }
  return out;
}

void ServingEngine::ExecuteBatch(const State* state, Slot** slots,
                                 size_t n) {
  if (n == 0) return;
  n_requests_.fetch_add(static_cast<int64_t>(n),
                        std::memory_order_relaxed);
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) {
    Metrics().requests->Add(static_cast<int64_t>(n));
    Metrics().batches->Add(1);
  }
  for (size_t i = 0; i < n; ++i) {
    slots[i]->batch_size = static_cast<int>(n);
  }
  // Failpoint "serve.execute": `delay:<ms>` simulates a slow batch (the
  // overload tests use it to back up the follower queue); `error` fails
  // the whole batch the way a poisoned snapshot would. The delay runs
  // BEFORE the exec_start stamp below, so injected stalls are attributed
  // to the queue stage — exactly where a real pre-batch stall would land.
  if (failpoint::Enabled()) {
    util::Status fp = failpoint::Check("serve.execute");
    if (!fp.ok()) {
      const auto t_fail = std::chrono::steady_clock::now();
      for (size_t i = 0; i < n; ++i) {
        slots[i]->response = Response{};
        slots[i]->response.error = fp.ToString();
        slots[i]->outcome = Outcome::kFailed;
        if (slots[i]->stages.active) {
          slots[i]->stages.exec_start = t_fail;
          slots[i]->stages.exec_end = t_fail;
        }
      }
      n_failed_.fetch_add(static_cast<int64_t>(n),
                          std::memory_order_relaxed);
      if (telemetry::Enabled()) {
        Metrics().failed->Add(static_cast<int64_t>(n));
      }
      return;
    }
  }
  // Requests that outlived their deadline while queued fail fast; the
  // client has typically already given up, so executing them only delays
  // the live ones behind them.
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    if (slots[i]->stages.active) slots[i]->stages.exec_start = now;
  }
  auto expired = [&](const Slot* s) {
    return s->has_deadline && now > s->deadline;
  };
  auto expire = [&](Slot* s) {
    s->response = Response{};
    s->response.error = "deadline exceeded";
    s->outcome = Outcome::kExpired;
    n_expired_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::Enabled()) Metrics().expired->Add(1);
  };
  auto run_one = [&](Slot* s) {
    if (expired(s)) {
      expire(s);
    } else {
      s->response = Execute(state, *s->request,
                            s->stages.active ? &s->stages : nullptr);
      s->outcome = s->response.ok ? Outcome::kOk : Outcome::kFailed;
      if (!s->response.ok) {
        n_failed_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::Enabled()) Metrics().failed->Add(1);
      }
    }
    if (s->stages.active) {
      s->stages.exec_end = std::chrono::steady_clock::now();
    }
  };
  if (n == 1) {
    run_one(slots[0]);
    return;
  }
  // Responses land in disjoint slots; per-request work is independent, so
  // results are identical whether the batch runs serially or fanned out
  // (inner ranking ParallelFors degrade to serial when nested — same
  // chunk boundaries, same arithmetic).
  util::ParallelFor(0, static_cast<int64_t>(n), 1,
                    [&](int64_t b, int64_t e) {
                      for (int64_t i = b; i < e; ++i) run_one(slots[i]);
                    });
}

std::vector<float> ServingEngine::ComputeUserVector(const State& state,
                                                    int32_t user) const {
  const EmbeddingView& users = state.users_view;
  const int64_t d = users.cols();
  std::vector<float> vec(static_cast<size_t>(d));
  // Identity for unsharded snapshots; callers guarantee the user is held
  // locally (LocalUserRow >= 0) before reaching here.
  users.DecodeRow(state.LocalUserRow(user), vec.data());
  const float alpha = config_.social_alpha;
  const auto& neighbors =
      state.snap->social[static_cast<size_t>(user)];
  // alpha == 0 keeps the (decoded) row bit-for-bit — no arithmetic
  // applied — the Recommender-parity path for dense snapshots.
  if (alpha == 0.0f || neighbors.empty()) return vec;
  std::vector<float> mean(static_cast<size_t>(d), 0.0f);
  std::vector<float> w(static_cast<size_t>(d));
  for (int32_t v : neighbors) {
    users.DecodeRow(v, w.data());
    for (int64_t c = 0; c < d; ++c) {
      mean[static_cast<size_t>(c)] += w[static_cast<size_t>(c)];
    }
  }
  const float inv = 1.0f / static_cast<float>(neighbors.size());
  for (int64_t c = 0; c < d; ++c) {
    vec[static_cast<size_t>(c)] =
        (1.0f - alpha) * vec[static_cast<size_t>(c)] +
        alpha * mean[static_cast<size_t>(c)] * inv;
  }
  return vec;
}

std::vector<float> ServingEngine::UserVector(const State& state,
                                             int32_t user) {
  if (config_.cache_capacity <= 0) return ComputeUserVector(state, user);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_version_ == state.version) {
      auto it = cache_index_.find(user);
      if (it != cache_index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        n_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::Enabled()) Metrics().cache_hits->Add(1);
        return it->second->second;  // copy out under the lock
      }
    }
  }
  // Miss: compute outside the lock, then insert (last writer wins; a
  // racing duplicate insert for the same user computes the same vector).
  std::vector<float> vec = ComputeUserVector(state, user);
  n_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) Metrics().cache_misses->Add(1);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_version_ != state.version) {
      // A swap happened while computing; don't poison the new cache with
      // an old-snapshot vector.
      if (cache_version_ < state.version) {
        lru_.clear();
        cache_index_.clear();
        cache_version_ = state.version;
      } else {
        return vec;
      }
    }
    auto it = cache_index_.find(user);
    if (it != cache_index_.end()) {
      lru_.erase(it->second);
      cache_index_.erase(it);
    }
    lru_.emplace_front(user, vec);
    cache_index_[user] = lru_.begin();
    while (lru_.size() > static_cast<size_t>(config_.cache_capacity)) {
      cache_index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  return vec;
}

void ServingEngine::CountDegraded() {
  n_degraded_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) Metrics().degraded->Add(1);
}

Response ServingEngine::Execute(const State* state, const Request& request,
                                StageTimes* stages) {
  using Clock = std::chrono::steady_clock;
  Response resp;
  if (state == nullptr) {
    resp.error = "no snapshot loaded";
    return resp;
  }
  const Snapshot& snap = *state->snap;
  resp.snapshot_version = state->version;
  // A user is "known" when it is in the global id space AND held by this
  // process (always, when unsharded; when sharded, only if owned). A
  // globally-valid-but-unowned user degrades like an unknown one on the
  // direct ops — the router never sends those here.
  const bool user_in_range =
      request.user >= 0 && request.user < state->num_users_global;
  const int64_t local_user =
      user_in_range ? state->LocalUserRow(request.user) : -1;
  const bool known_user = local_user >= 0;
  const int32_t item_offset = static_cast<int32_t>(state->item_offset);
  // Sharded snapshots keep global ids in their seen lists; the dense scan
  // filters by LOCAL row, so shift when the slice does not start at 0.
  std::vector<int32_t> seen_local_storage;
  auto local_seen = [&](int32_t user) -> const std::vector<int32_t>& {
    const std::vector<int32_t>& g = snap.seen[static_cast<size_t>(user)];
    if (item_offset == 0) return g;
    seen_local_storage.clear();
    seen_local_storage.reserve(g.size());
    for (int32_t it : g) seen_local_storage.push_back(it - item_offset);
    return seen_local_storage;
  };
  auto globalize_items = [&](std::vector<ScoredItem>& items) {
    if (item_offset == 0) return;
    for (ScoredItem& s : items) s.item += item_offset;
  };
  switch (request.type) {
    case Request::Type::kTopK: {
      if (request.k <= 0) {
        resp.error = "k must be positive";
        return resp;
      }
      if (!known_user) {
        // Cold/unknown user: popularity ranking (count desc, id asc),
        // scores are raw train counts.
        const size_t keep = std::min<size_t>(
            static_cast<size_t>(request.k), state->popularity.size());
        resp.items.assign(state->popularity.begin(),
                          state->popularity.begin() +
                              static_cast<int64_t>(keep));
        resp.degraded = true;
        CountDegraded();
        break;
      }
      Clock::time_point t0;
      if (stages != nullptr) t0 = Clock::now();
      const std::vector<float> vec = UserVector(*state, request.user);
      if (stages != nullptr) {
        stages->recal_seconds = Seconds(t0, Clock::now());
      }
      const std::vector<int32_t>& seen = local_seen(request.user);
      double* compute_s =
          stages != nullptr ? &stages->compute_seconds : nullptr;
      double* rank_s = stages != nullptr ? &stages->rank_seconds : nullptr;
      const bool use_ivf = !snap.ivf.empty() && config_.nprobe > 0;
      if (!use_ivf && state->items_view.dense()) {
        // Dense brute force stays on the seed-era path — bit-identical to
        // train::Recommender by construction.
        resp.items = TopKUnseenItemsTimed(vec.data(), snap.items, seen,
                                          request.k, compute_s, rank_s);
        globalize_items(resp.items);
        break;
      }
      std::vector<int32_t> candidates;
      const std::vector<int32_t>* cand_ptr = nullptr;
      if (use_ivf) {
        // Rank the coarse lists against the scoring vector and gather the
        // top-nprobe lists' members as the candidate shortlist.
        std::vector<int32_t> lists;
        snap.ivf.RankLists(vec.data(), config_.nprobe, &lists);
        int64_t total = 0;
        for (int32_t l : lists) {
          total += snap.ivf.list_offsets[static_cast<size_t>(l) + 1] -
                   snap.ivf.list_offsets[static_cast<size_t>(l)];
        }
        candidates.reserve(static_cast<size_t>(total));
        for (int32_t l : lists) {
          const auto b = snap.ivf.list_offsets[static_cast<size_t>(l)];
          const auto e = snap.ivf.list_offsets[static_cast<size_t>(l) + 1];
          candidates.insert(candidates.end(),
                            snap.ivf.list_items.begin() + b,
                            snap.ivf.list_items.begin() + e);
        }
        cand_ptr = &candidates;
      }
      const int rerank = config_.rerank > 0
                             ? config_.rerank
                             : std::max(4 * request.k, 64);
      resp.items =
          TopKUnseenFromView(vec.data(), state->items_view, cand_ptr, seen,
                             request.k, rerank, compute_s, rank_s);
      globalize_items(resp.items);
      break;
    }
    case Request::Type::kScore: {
      const int64_t local_item =
          static_cast<int64_t>(request.item) - state->item_offset;
      const bool known_item = request.item >= 0 &&
                              request.item < state->num_items_global &&
                              local_item >= 0 &&
                              local_item < state->items_view.rows();
      if (!known_user || !known_item) {
        resp.score = 0.0f;
        resp.degraded = true;
        CountDegraded();
        break;
      }
      Clock::time_point t0;
      if (stages != nullptr) t0 = Clock::now();
      const std::vector<float> vec = UserVector(*state, request.user);
      Clock::time_point t1;
      if (stages != nullptr) {
        t1 = Clock::now();
        stages->recal_seconds = Seconds(t0, t1);
      }
      resp.score = state->items_view.Score(vec.data(), local_item);
      if (stages != nullptr) {
        stages->compute_seconds = Seconds(t1, Clock::now());
      }
      break;
    }
    case Request::Type::kSimilarUsers: {
      if (request.k <= 0) {
        resp.error = "k must be positive";
        return resp;
      }
      if (!known_user) {
        resp.degraded = true;
        CountDegraded();
        break;
      }
      // No recalibration path here; the whole cosine scan is "compute".
      Clock::time_point t0;
      if (stages != nullptr) t0 = Clock::now();
      std::vector<float> u(static_cast<size_t>(state->users_view.cols()));
      state->users_view.DecodeRow(local_user, u.data());
      resp.items = SimilarUsersByCosine(static_cast<int32_t>(local_user),
                                        u.data(), state->users_view,
                                        state->user_norms, request.k);
      if (!state->owned.empty()) {
        for (ScoredItem& s : resp.items) {
          s.item = state->owned[static_cast<size_t>(s.item)];
        }
      }
      if (stages != nullptr) {
        stages->compute_seconds = Seconds(t0, Clock::now());
      }
      break;
    }
    case Request::Type::kUserVector: {
      if (!known_user) {
        // Unknown (or unowned) user: empty vector, degraded — the router
        // turns this into its popularity fallback.
        resp.degraded = true;
        CountDegraded();
        break;
      }
      resp.vector = UserVector(*state, request.user);
      resp.vector_norm =
          state->user_norms[static_cast<size_t>(local_user)];
      break;
    }
    case Request::Type::kTopKPartial: {
      if (request.k <= 0) {
        resp.error = "k must be positive";
        return resp;
      }
      if (request.popularity) {
        const size_t keep = std::min<size_t>(
            static_cast<size_t>(request.k), state->popularity.size());
        resp.items.assign(state->popularity.begin(),
                          state->popularity.begin() +
                              static_cast<int64_t>(keep));
        resp.degraded = true;
        CountDegraded();
        break;
      }
      if (static_cast<int64_t>(request.query.size()) !=
          state->items_view.cols()) {
        resp.error = "query dimension mismatch";
        return resp;
      }
      // Seen exclusion uses the GLOBAL user's list regardless of which
      // shard owns the user — same filter the single-process scan
      // applies, restricted to this slice.
      static const std::vector<int32_t> kNoSeen;
      const std::vector<int32_t>* seen = &kNoSeen;
      if (user_in_range) seen = &local_seen(request.user);
      double* compute_s =
          stages != nullptr ? &stages->compute_seconds : nullptr;
      double* rank_s =
          stages != nullptr ? &stages->rank_seconds : nullptr;
      if (state->items_view.dense()) {
        resp.items =
            TopKUnseenItemsTimed(request.query.data(), snap.items, *seen,
                                 request.k, compute_s, rank_s);
      } else {
        resp.items = TopKUnseenFromView(
            request.query.data(), state->items_view, nullptr, *seen,
            request.k, request.k, compute_s, rank_s);
      }
      globalize_items(resp.items);
      break;
    }
    case Request::Type::kSimilarPartial: {
      if (request.k <= 0) {
        resp.error = "k must be positive";
        return resp;
      }
      if (static_cast<int64_t>(request.query.size()) !=
          state->users_view.cols()) {
        resp.error = "query dimension mismatch";
        return resp;
      }
      Clock::time_point t0;
      if (stages != nullptr) t0 = Clock::now();
      // Exclude the query user's own row only if this shard holds it.
      resp.items = SimilarUsersPartial(
          request.query.data(), request.query_norm, state->users_view,
          state->user_norms, known_user ? local_user : -1, request.k);
      if (!state->owned.empty()) {
        for (ScoredItem& s : resp.items) {
          s.item = state->owned[static_cast<size_t>(s.item)];
        }
      }
      if (stages != nullptr) {
        stages->compute_seconds = Seconds(t0, Clock::now());
      }
      break;
    }
    case Request::Type::kScoreItem: {
      if (static_cast<int64_t>(request.query.size()) !=
          state->items_view.cols()) {
        resp.error = "query dimension mismatch";
        return resp;
      }
      const int64_t local_item =
          static_cast<int64_t>(request.item) - state->item_offset;
      if (request.item < 0 || request.item >= state->num_items_global) {
        resp.score = 0.0f;
        resp.degraded = true;
        CountDegraded();
        break;
      }
      if (local_item < 0 || local_item >= state->items_view.rows()) {
        resp.error = "item not held by this shard";
        return resp;
      }
      resp.score =
          state->items_view.Score(request.query.data(), local_item);
      break;
    }
  }
  resp.ok = true;
  return resp;
}

EngineStats ServingEngine::stats() const {
  EngineStats s;
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.cache_hits = n_cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = n_cache_misses_.load(std::memory_order_relaxed);
  s.snapshot_swaps = swap_count_.load(std::memory_order_relaxed);
  s.degraded_requests = n_degraded_.load(std::memory_order_relaxed);
  s.shed_requests = n_shed_.load(std::memory_order_relaxed);
  s.expired_requests = n_expired_.load(std::memory_order_relaxed);
  s.failed_requests = n_failed_.load(std::memory_order_relaxed);
  return s;
}

void ServingEngine::SetTraceSink(TraceSink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  has_sink_.store(static_cast<bool>(sink), std::memory_order_relaxed);
  sink_ = std::move(sink);
}

void ServingEngine::StartSampler(int period_ms) {
  if (period_ms <= 0) period_ms = config_.sampler_period_ms;
  if (period_ms <= 0) period_ms = 1000;
  bool expected = false;
  if (!sampler_running_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = false;
  }
  sampler_thread_ = std::thread([this, period_ms] {
    auto last = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(sampler_mu_);
    while (!sampler_stop_) {
      sampler_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                           [this] { return sampler_stop_; });
      if (sampler_stop_) break;
      lock.unlock();
      const auto now = std::chrono::steady_clock::now();
      SampleOnce(Seconds(last, now));
      last = now;
      lock.lock();
    }
  });
}

void ServingEngine::StopSampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_thread_.joinable()) sampler_thread_.join();
  sampler_running_.store(false, std::memory_order_relaxed);
}

void ServingEngine::SampleOnceForTest(double seconds) {
  SampleOnce(seconds);
}

void ServingEngine::SampleOnce(double seconds) {
  std::lock_guard<std::mutex> lock(sample_mu_);
  const int64_t requests = n_requests_.load(std::memory_order_relaxed);
  const int64_t shed = n_shed_.load(std::memory_order_relaxed);
  const int64_t expired = n_expired_.load(std::memory_order_relaxed);
  const int64_t failed = n_failed_.load(std::memory_order_relaxed);
  const int64_t degraded = n_degraded_.load(std::memory_order_relaxed);
  const int64_t swaps = swap_count_.load(std::memory_order_relaxed);
  const int64_t hits = n_cache_hits_.load(std::memory_order_relaxed);
  const int64_t misses = n_cache_misses_.load(std::memory_order_relaxed);
  telemetry::WindowedStats::Sample smp;
  smp.seconds = seconds > 0.0 ? seconds : 1.0;
  const int64_t d_exec = requests - cursor_.requests;
  smp.shed = shed - cursor_.shed;
  smp.expired = expired - cursor_.expired;
  smp.failed = failed - cursor_.failed;
  // "requests" in a window counts admitted attempts; executed requests
  // that were neither expired nor failed are the ok ones. The counters
  // are read independently, so a request landing mid-sample can skew one
  // tick by a count — clamp rather than report a negative.
  smp.requests = d_exec + smp.shed;
  smp.ok = std::max<int64_t>(0, d_exec - smp.expired - smp.failed);
  smp.degraded = degraded - cursor_.degraded;
  smp.swaps = swaps - cursor_.swaps;
  smp.cache_hits = hits - cursor_.cache_hits;
  smp.cache_misses = misses - cursor_.cache_misses;
  smp.latency = e2e_hist_.SnapshotDelta(&cursor_.latency);
  {
    std::lock_guard<std::mutex> qlock(batch_mu_);
    smp.queue_depth = static_cast<int64_t>(queue_.size());
  }
  cursor_.requests = requests;
  cursor_.shed = shed;
  cursor_.expired = expired;
  cursor_.failed = failed;
  cursor_.degraded = degraded;
  cursor_.swaps = swaps;
  cursor_.cache_hits = hits;
  cursor_.cache_misses = misses;
  windows_->Push(smp);
}

}  // namespace dgnn::serve
