#include "serve/engine.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::serve {
namespace {

// Registered once; Add() calls are guarded by telemetry::Enabled() per
// the repo convention (engine-internal atomics track totals regardless).
struct ServeMetrics {
  telemetry::Counter* requests = telemetry::GetCounter("serve.requests");
  telemetry::Counter* batches = telemetry::GetCounter("serve.batches");
  telemetry::Counter* cache_hits =
      telemetry::GetCounter("serve.cache_hits");
  telemetry::Counter* cache_misses =
      telemetry::GetCounter("serve.cache_misses");
  telemetry::Counter* swaps =
      telemetry::GetCounter("serve.snapshot_swaps");
  telemetry::Counter* degraded =
      telemetry::GetCounter("serve.degraded_requests");
  telemetry::Counter* shed = telemetry::GetCounter("serve.shed_requests");
  telemetry::Counter* expired =
      telemetry::GetCounter("serve.expired_requests");
  telemetry::Gauge* queue_depth = telemetry::GetGauge("serve.queue_depth");
  telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.request_seconds");
};

ServeMetrics& Metrics() {
  static ServeMetrics* m = new ServeMetrics();
  return *m;
}

}  // namespace

ServingEngine::ServingEngine(EngineConfig config) : config_(config) {}

util::Status ServingEngine::Load(const std::string& path) {
  auto snapshot = ReadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  Swap(std::make_shared<const Snapshot>(std::move(snapshot).value()));
  return util::Status::Ok();
}

void ServingEngine::Swap(std::shared_ptr<const Snapshot> snapshot) {
  DGNN_CHECK(snapshot != nullptr);
  auto state = std::make_shared<State>();
  state->user_norms = ComputeRowNorms(snapshot->users);
  state->popularity.reserve(snapshot->item_counts.size());
  for (size_t i = 0; i < snapshot->item_counts.size(); ++i) {
    state->popularity.push_back(
        {static_cast<int32_t>(i),
         static_cast<float>(snapshot->item_counts[i])});
  }
  std::sort(state->popularity.begin(), state->popularity.end(),
            ScoreGreater);
  state->snap = std::move(snapshot);
  state->version = swap_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    // Concurrent swaps publish in version order; a racing older build
    // never clobbers a newer snapshot.
    if (state_ == nullptr || state->version > state_->version) {
      state_ = std::move(state);
    }
  }
  {
    // Invalidate eagerly so stale vectors don't pin the old snapshot's
    // memory; UserVector also re-checks the version lazily.
    std::lock_guard<std::mutex> lock(cache_mu_);
    lru_.clear();
    cache_index_.clear();
    cache_version_ = swap_count_.load(std::memory_order_relaxed);
  }
  if (telemetry::Enabled()) Metrics().swaps->Add(1);
}

std::shared_ptr<const Snapshot> ServingEngine::snapshot() const {
  auto state = AcquireState();
  return state == nullptr ? nullptr : state->snap;
}

int64_t ServingEngine::swap_count() const {
  return swap_count_.load(std::memory_order_relaxed);
}

std::shared_ptr<const ServingEngine::State> ServingEngine::AcquireState()
    const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

void ServingEngine::StampDeadline(Slot* slot) const {
  const int64_t timeout_ms = slot->request->timeout_ms != 0
                                 ? slot->request->timeout_ms
                                 : config_.default_deadline_ms;
  if (timeout_ms <= 0) return;
  slot->has_deadline = true;
  slot->deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(timeout_ms);
}

Response ServingEngine::Handle(const Request& request) {
  telemetry::ScopedLatency record_latency(Metrics().latency);
  Slot slot;
  slot.request = &request;
  StampDeadline(&slot);
  std::unique_lock<std::mutex> lock(batch_mu_);
  if (leader_active_) {
    // Load shedding: a full follower queue means the leader is already
    // saturated; refusing NOW costs the client one fast round-trip,
    // while queueing would cost every queued request unbounded latency.
    if (config_.max_queue > 0 &&
        queue_.size() >= static_cast<size_t>(config_.max_queue)) {
      lock.unlock();
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::Enabled()) Metrics().shed->Add(1);
      Response resp;
      resp.error = "overloaded";
      return resp;
    }
    queue_.push_back(&slot);
    if (telemetry::Enabled()) {
      Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    // A leader is already draining the queue; it will execute our slot
    // in one of its batches. Wait for completion.
    batch_cv_.wait(lock, [&] { return slot.done; });
    return std::move(slot.response);
  }
  queue_.push_back(&slot);
  // Become the leader: repeatedly swap out whatever has queued up
  // (including our own slot) and execute it as one parallel batch.
  // Requests arriving meanwhile queue behind us and form the next batch —
  // micro-batching driven purely by concurrency, no timers.
  leader_active_ = true;
  while (!queue_.empty()) {
    std::vector<Slot*> batch;
    batch.swap(queue_);
    if (telemetry::Enabled()) Metrics().queue_depth->Set(0.0);
    lock.unlock();
    auto state = AcquireState();
    ExecuteBatch(state.get(), batch.data(), batch.size());
    lock.lock();
    for (Slot* s : batch) s->done = true;
    batch_cv_.notify_all();
  }
  leader_active_ = false;
  return std::move(slot.response);
}

std::vector<Response> ServingEngine::HandleBatch(
    const std::vector<Request>& requests) {
  auto state = AcquireState();
  std::vector<Slot> slots(requests.size());
  std::vector<Slot*> ptrs(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    slots[i].request = &requests[i];
    StampDeadline(&slots[i]);
    ptrs[i] = &slots[i];
  }
  ExecuteBatch(state.get(), ptrs.data(), ptrs.size());
  std::vector<Response> out;
  out.reserve(slots.size());
  for (Slot& s : slots) out.push_back(std::move(s.response));
  return out;
}

void ServingEngine::ExecuteBatch(const State* state, Slot** slots,
                                 size_t n) {
  if (n == 0) return;
  n_requests_.fetch_add(static_cast<int64_t>(n),
                        std::memory_order_relaxed);
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) {
    Metrics().requests->Add(static_cast<int64_t>(n));
    Metrics().batches->Add(1);
  }
  // Failpoint "serve.execute": `delay:<ms>` simulates a slow batch (the
  // overload tests use it to back up the follower queue); `error` fails
  // the whole batch the way a poisoned snapshot would.
  if (failpoint::Enabled()) {
    util::Status fp = failpoint::Check("serve.execute");
    if (!fp.ok()) {
      for (size_t i = 0; i < n; ++i) {
        slots[i]->response = Response{};
        slots[i]->response.error = fp.ToString();
      }
      return;
    }
  }
  // Requests that outlived their deadline while queued fail fast; the
  // client has typically already given up, so executing them only delays
  // the live ones behind them.
  const auto now = std::chrono::steady_clock::now();
  auto expired = [&](const Slot* s) {
    return s->has_deadline && now > s->deadline;
  };
  auto expire = [&](Slot* s) {
    s->response = Response{};
    s->response.error = "deadline exceeded";
    n_expired_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::Enabled()) Metrics().expired->Add(1);
  };
  if (n == 1) {
    if (expired(slots[0])) {
      expire(slots[0]);
    } else {
      slots[0]->response = Execute(state, *slots[0]->request);
    }
    return;
  }
  // Responses land in disjoint slots; per-request work is independent, so
  // results are identical whether the batch runs serially or fanned out
  // (inner ranking ParallelFors degrade to serial when nested — same
  // chunk boundaries, same arithmetic).
  util::ParallelFor(0, static_cast<int64_t>(n), 1,
                    [&](int64_t b, int64_t e) {
                      for (int64_t i = b; i < e; ++i) {
                        if (expired(slots[i])) {
                          expire(slots[i]);
                        } else {
                          slots[i]->response =
                              Execute(state, *slots[i]->request);
                        }
                      }
                    });
}

std::vector<float> ServingEngine::ComputeUserVector(const State& state,
                                                    int32_t user) const {
  const ag::Tensor& users = state.snap->users;
  const float* u = users.row(user);
  const int64_t d = users.cols();
  std::vector<float> vec(u, u + d);
  const float alpha = config_.social_alpha;
  const auto& neighbors =
      state.snap->social[static_cast<size_t>(user)];
  // alpha == 0 keeps the raw row bit-for-bit (no arithmetic applied), the
  // Recommender-parity path.
  if (alpha == 0.0f || neighbors.empty()) return vec;
  std::vector<float> mean(static_cast<size_t>(d), 0.0f);
  for (int32_t v : neighbors) {
    const float* w = users.row(v);
    for (int64_t c = 0; c < d; ++c) mean[static_cast<size_t>(c)] += w[c];
  }
  const float inv = 1.0f / static_cast<float>(neighbors.size());
  for (int64_t c = 0; c < d; ++c) {
    vec[static_cast<size_t>(c)] =
        (1.0f - alpha) * vec[static_cast<size_t>(c)] +
        alpha * mean[static_cast<size_t>(c)] * inv;
  }
  return vec;
}

std::vector<float> ServingEngine::UserVector(const State& state,
                                             int32_t user) {
  if (config_.cache_capacity <= 0) return ComputeUserVector(state, user);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_version_ == state.version) {
      auto it = cache_index_.find(user);
      if (it != cache_index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        n_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::Enabled()) Metrics().cache_hits->Add(1);
        return it->second->second;  // copy out under the lock
      }
    }
  }
  // Miss: compute outside the lock, then insert (last writer wins; a
  // racing duplicate insert for the same user computes the same vector).
  std::vector<float> vec = ComputeUserVector(state, user);
  n_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) Metrics().cache_misses->Add(1);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_version_ != state.version) {
      // A swap happened while computing; don't poison the new cache with
      // an old-snapshot vector.
      if (cache_version_ < state.version) {
        lru_.clear();
        cache_index_.clear();
        cache_version_ = state.version;
      } else {
        return vec;
      }
    }
    auto it = cache_index_.find(user);
    if (it != cache_index_.end()) {
      lru_.erase(it->second);
      cache_index_.erase(it);
    }
    lru_.emplace_front(user, vec);
    cache_index_[user] = lru_.begin();
    while (lru_.size() > static_cast<size_t>(config_.cache_capacity)) {
      cache_index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  return vec;
}

void ServingEngine::CountDegraded() {
  n_degraded_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) Metrics().degraded->Add(1);
}

Response ServingEngine::Execute(const State* state,
                                const Request& request) {
  Response resp;
  if (state == nullptr) {
    resp.error = "no snapshot loaded";
    return resp;
  }
  const Snapshot& snap = *state->snap;
  resp.snapshot_version = state->version;
  const bool known_user =
      request.user >= 0 && request.user < snap.users.rows();
  switch (request.type) {
    case Request::Type::kTopK: {
      if (request.k <= 0) {
        resp.error = "k must be positive";
        return resp;
      }
      if (!known_user) {
        // Cold/unknown user: popularity ranking (count desc, id asc),
        // scores are raw train counts.
        const size_t keep = std::min<size_t>(
            static_cast<size_t>(request.k), state->popularity.size());
        resp.items.assign(state->popularity.begin(),
                          state->popularity.begin() +
                              static_cast<int64_t>(keep));
        resp.degraded = true;
        CountDegraded();
        break;
      }
      const std::vector<float> vec = UserVector(*state, request.user);
      resp.items = TopKUnseenItems(
          vec.data(), snap.items,
          snap.seen[static_cast<size_t>(request.user)], request.k);
      break;
    }
    case Request::Type::kScore: {
      const bool known_item =
          request.item >= 0 && request.item < snap.items.rows();
      if (!known_user || !known_item) {
        resp.score = 0.0f;
        resp.degraded = true;
        CountDegraded();
        break;
      }
      const std::vector<float> vec = UserVector(*state, request.user);
      resp.score =
          Dot(vec.data(), snap.items.row(request.item), snap.items.cols());
      break;
    }
    case Request::Type::kSimilarUsers: {
      if (request.k <= 0) {
        resp.error = "k must be positive";
        return resp;
      }
      if (!known_user) {
        resp.degraded = true;
        CountDegraded();
        break;
      }
      resp.items = SimilarUsersByCosine(request.user, snap.users,
                                        state->user_norms, request.k);
      break;
    }
  }
  resp.ok = true;
  return resp;
}

EngineStats ServingEngine::stats() const {
  EngineStats s;
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.cache_hits = n_cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = n_cache_misses_.load(std::memory_order_relaxed);
  s.snapshot_swaps = swap_count_.load(std::memory_order_relaxed);
  s.degraded_requests = n_degraded_.load(std::memory_order_relaxed);
  s.shed_requests = n_shed_.load(std::memory_order_relaxed);
  s.expired_requests = n_expired_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dgnn::serve
