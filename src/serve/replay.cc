#include "serve/replay.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace dgnn::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Nearest-rank quantile over an ascending-sorted sample, in ms.
double QuantileMs(const std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_ms.size())));
  const size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct WorkerTally {
  std::vector<double> latencies_ms;
  std::vector<int64_t> trace_ids;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t failed = 0;
  int64_t late_dispatches = 0;
  double max_lateness_ms = 0.0;
  Clock::time_point last_completion;
};

}  // namespace

int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

ReplayResult ReplayTrace(ServingEngine& engine,
                         const std::vector<TraceRecord>& records,
                         const ReplayConfig& config) {
  return ReplayTrace(
      [&engine](const Request& req) { return engine.Handle(req); }, records,
      config);
}

ReplayResult ReplayTrace(const ReplayHandler& handler,
                         const std::vector<TraceRecord>& records,
                         const ReplayConfig& config) {
  ReplayResult result;
  result.requests = static_cast<int64_t>(records.size());
  if (records.empty()) return result;

  const int workers = std::max(1, config.workers);
  std::vector<WorkerTally> tallies(static_cast<size_t>(workers));

  // Small fixed lead so worker 0's first record is not already late
  // while the remaining threads are still being spawned.
  const Clock::time_point epoch = Clock::now() + std::chrono::milliseconds(5);
  constexpr double kLateThresholdMs = 1.0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerTally& tally = tallies[static_cast<size_t>(w)];
      tally.last_completion = epoch;
      for (size_t i = static_cast<size_t>(w); i < records.size();
           i += static_cast<size_t>(workers)) {
        const TraceRecord& rec = records[i];
        const Clock::time_point scheduled =
            epoch + std::chrono::nanoseconds(rec.arrival_ns);
        std::this_thread::sleep_until(scheduled);
        const Clock::time_point dispatched = Clock::now();
        const double lateness_ms =
            std::chrono::duration<double, std::milli>(dispatched - scheduled)
                .count();
        if (lateness_ms > kLateThresholdMs) {
          ++tally.late_dispatches;
          tally.max_lateness_ms =
              std::max(tally.max_lateness_ms, lateness_ms);
        }

        const Response resp = handler(rec.ToRequest());
        const Clock::time_point completed = Clock::now();
        tally.last_completion = completed;
        tally.trace_ids.push_back(resp.trace_id);
        // Latency from the SCHEDULED arrival: queueing delay in the
        // harness counts against the engine, as it would for a real
        // client that issued the request on time.
        tally.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(completed - scheduled)
                .count());
        if (resp.ok) {
          ++tally.ok;
          if (resp.degraded) ++tally.degraded;
        } else if (resp.error == "overloaded") {
          ++tally.shed;
        } else if (resp.error == "deadline exceeded") {
          ++tally.expired;
        } else {
          ++tally.failed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<double> all_ms;
  all_ms.reserve(records.size());
  std::vector<int64_t> all_ids;
  all_ids.reserve(records.size());
  Clock::time_point last_completion = epoch;
  for (const WorkerTally& tally : tallies) {
    all_ms.insert(all_ms.end(), tally.latencies_ms.begin(),
                  tally.latencies_ms.end());
    all_ids.insert(all_ids.end(), tally.trace_ids.begin(),
                   tally.trace_ids.end());
    result.ok += tally.ok;
    result.degraded += tally.degraded;
    result.shed += tally.shed;
    result.expired += tally.expired;
    result.failed += tally.failed;
    result.late_dispatches += tally.late_dispatches;
    result.max_lateness_ms =
        std::max(result.max_lateness_ms, tally.max_lateness_ms);
    last_completion = std::max(last_completion, tally.last_completion);
  }
  std::sort(all_ms.begin(), all_ms.end());
  std::sort(all_ids.begin(), all_ids.end());
  result.distinct_trace_ids = static_cast<int64_t>(
      std::unique(all_ids.begin(), all_ids.end()) - all_ids.begin());

  const Clock::time_point first_scheduled =
      epoch + std::chrono::nanoseconds(records.front().arrival_ns);
  result.seconds =
      std::chrono::duration<double>(last_completion - first_scheduled)
          .count();
  const double span_s =
      static_cast<double>(records.back().arrival_ns -
                          records.front().arrival_ns) /
      1e9;
  result.offered_qps =
      span_s > 0 ? static_cast<double>(records.size()) / span_s : 0.0;
  result.achieved_qps =
      result.seconds > 0
          ? static_cast<double>(result.ok) / result.seconds
          : 0.0;
  result.p50_ms = QuantileMs(all_ms, 0.50);
  result.p95_ms = QuantileMs(all_ms, 0.95);
  result.p99_ms = QuantileMs(all_ms, 0.99);
  result.max_ms = all_ms.empty() ? 0.0 : all_ms.back();
  double sum = 0.0;
  for (double v : all_ms) sum += v;
  result.mean_ms =
      all_ms.empty() ? 0.0 : sum / static_cast<double>(all_ms.size());
  result.peak_rss_bytes = PeakRssBytes();
  return result;
}

}  // namespace dgnn::serve
