#include "serve/trace.h"

#include <cmath>
#include <cstring>

#include "serve/snapshot.h"  // internal::Fnv1a64
#include "util/fs.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dgnn::serve {
namespace {

using util::Status;
using util::StatusOr;

constexpr char kMagic[8] = {'D', 'G', 'N', 'N', 'T', 'R', 'C', '1'};
constexpr size_t kHeaderBytes = 8 + 8 + 8;  // magic + seed + count
constexpr size_t kRecordBytes = 8 + 1 + 4 + 4 + 4;
constexpr size_t kChecksumBytes = 8;

template <typename T>
void AppendLE(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T ReadLE(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

// Instantaneous rate of the schedule at time t (seconds), and the
// schedule's maximum rate — the thinning envelope.
double RateAt(const ScheduleConfig& s, double t) {
  switch (s.arrival) {
    case ArrivalProcess::kPoisson:
      return s.target_qps;
    case ArrivalProcess::kBurst: {
      // Square wave with time-average target_qps: the high phase runs at
      // 2*ratio/(1+ratio) times target, the low phase at 2/(1+ratio).
      const double phase = std::fmod(t, s.burst_period_s);
      const double high = s.target_qps * 2.0 * s.burst_ratio /
                          (1.0 + s.burst_ratio);
      const double low = s.target_qps * 2.0 / (1.0 + s.burst_ratio);
      return phase < 0.5 * s.burst_period_s ? high : low;
    }
    case ArrivalProcess::kDiurnal:
      return s.target_qps *
             (1.0 + s.diurnal_amplitude *
                        std::sin(2.0 * M_PI * t / s.diurnal_period_s));
  }
  return s.target_qps;
}

double MaxRate(const ScheduleConfig& s) {
  switch (s.arrival) {
    case ArrivalProcess::kPoisson:
      return s.target_qps;
    case ArrivalProcess::kBurst:
      return s.target_qps * 2.0 * s.burst_ratio / (1.0 + s.burst_ratio);
    case ArrivalProcess::kDiurnal:
      return s.target_qps * (1.0 + s.diurnal_amplitude);
  }
  return s.target_qps;
}

}  // namespace

Request TraceRecord::ToRequest() const {
  Request req;
  switch (type) {
    case 0:
      req.type = Request::Type::kTopK;
      break;
    case 1:
      req.type = Request::Type::kScore;
      break;
    default:
      req.type = Request::Type::kSimilarUsers;
      break;
  }
  req.user = user;
  req.item = item;
  req.k = k;
  return req;
}

StatusOr<ArrivalProcess> ParseArrivalProcess(const std::string& name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "burst") return ArrivalProcess::kBurst;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  return Status::InvalidArgument(
      "unknown arrival process '" + name +
      "' (expected poisson, burst or diurnal)");
}

const char* ArrivalProcessName(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBurst:
      return "burst";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "?";
}

Trace GenerateTrace(const ScheduleConfig& schedule, int32_t num_users,
                    int32_t num_items, int k, double hot_fraction) {
  Trace trace;
  trace.seed = schedule.seed;
  trace.records.reserve(static_cast<size_t>(schedule.num_requests));
  util::Rng rng(schedule.seed);

  // Non-homogeneous Poisson via thinning (Lewis & Shedler): draw
  // candidate gaps at the envelope rate, accept each candidate with
  // probability rate(t) / envelope. Exact for every schedule here, and
  // one code path instead of three.
  const double envelope = MaxRate(schedule);
  const int32_t hot_users = std::max<int32_t>(1, num_users / 8);
  double t = 0.0;
  int64_t emitted = 0;
  while (emitted < schedule.num_requests) {
    double u = rng.UniformDouble();
    if (u < 1e-12) u = 1e-12;
    t += -std::log(u) / envelope;
    if (rng.UniformDouble() * envelope > RateAt(schedule, t)) continue;

    TraceRecord rec;
    rec.arrival_ns = static_cast<int64_t>(t * 1e9);
    // Same mix as the closed-loop bench: 7/10 TopK, 1/10 Score, 1/10
    // SimilarUsers, 1/10 unknown-user (degraded popularity path).
    // topk_only pins the mix to the known-user TopK slice (the retrieval
    // path under measurement); it changes only which branch is taken, so
    // arrival times and user draws stay on the same RNG stream shape.
    const int mix = schedule.topk_only ? 0 : static_cast<int>(emitted % 10);
    if (mix < 7) {
      rec.type = 0;
      rec.k = k;
    } else if (mix == 7) {
      rec.type = 1;
      rec.item = static_cast<int32_t>(rng.UniformInt(num_items));
    } else if (mix == 8) {
      rec.type = 2;
      rec.k = 5;
    } else {
      rec.type = 0;
      rec.k = k;
      rec.user = num_users + static_cast<int32_t>(rng.UniformInt(100));
    }
    if (mix != 9) {
      const bool hot =
          rng.UniformInt(1000) < static_cast<int64_t>(hot_fraction * 1000);
      rec.user = hot ? static_cast<int32_t>(rng.UniformInt(hot_users))
                     : static_cast<int32_t>(rng.UniformInt(num_users));
    }
    trace.records.push_back(rec);
    ++emitted;
  }
  return trace;
}

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  out.reserve(kHeaderBytes + kRecordBytes * trace.records.size() +
              kChecksumBytes);
  out.append(kMagic, sizeof(kMagic));
  AppendLE<uint64_t>(&out, trace.seed);
  AppendLE<uint64_t>(&out, trace.records.size());
  for (const TraceRecord& r : trace.records) {
    AppendLE<int64_t>(&out, r.arrival_ns);
    out.push_back(static_cast<char>(r.type));
    AppendLE<int32_t>(&out, r.user);
    AppendLE<int32_t>(&out, r.item);
    AppendLE<int32_t>(&out, r.k);
  }
  AppendLE<uint64_t>(&out, internal::Fnv1a64(out.data(), out.size()));
  return out;
}

Status WriteTrace(const Trace& trace, const std::string& path) {
  return fs::AtomicWriteFile(path, SerializeTrace(trace));
}

StatusOr<Trace> ReadTrace(const std::string& path) {
  auto content = fs::ReadFileToString(path);
  if (!content.ok()) return content.status();
  const std::string& bytes = content.value();

  if (bytes.size() < kHeaderBytes + kChecksumBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a DGNNTRC1 trace");
  }
  const uint64_t checksum = internal::Fnv1a64(
      bytes.data(), bytes.size() - kChecksumBytes);
  if (ReadLE<uint64_t>(bytes.data() + bytes.size() - kChecksumBytes) !=
      checksum) {
    return Status::InvalidArgument(path + ": trace checksum mismatch");
  }
  const uint64_t count = ReadLE<uint64_t>(bytes.data() + 16);
  const uint64_t want =
      kHeaderBytes + kRecordBytes * count + kChecksumBytes;
  if (bytes.size() != want) {
    return Status::InvalidArgument(util::StrFormat(
        "%s: trace length %llu does not match record count %llu",
        path.c_str(), (unsigned long long)bytes.size(),
        (unsigned long long)count));
  }

  Trace trace;
  trace.seed = ReadLE<uint64_t>(bytes.data() + 8);
  trace.records.reserve(count);
  int64_t prev_arrival = 0;
  const char* p = bytes.data() + kHeaderBytes;
  for (uint64_t i = 0; i < count; ++i, p += kRecordBytes) {
    TraceRecord r;
    r.arrival_ns = ReadLE<int64_t>(p);
    r.type = static_cast<uint8_t>(p[8]);
    r.user = ReadLE<int32_t>(p + 9);
    r.item = ReadLE<int32_t>(p + 13);
    r.k = ReadLE<int32_t>(p + 17);
    if (r.type > 2) {
      return Status::InvalidArgument(util::StrFormat(
          "%s: record %llu has invalid type %d", path.c_str(),
          (unsigned long long)i, (int)r.type));
    }
    if (r.arrival_ns < prev_arrival) {
      return Status::InvalidArgument(util::StrFormat(
          "%s: record %llu arrival goes backwards", path.c_str(),
          (unsigned long long)i));
    }
    if (r.user < 0 || r.item < 0 || r.k < 0) {
      return Status::InvalidArgument(util::StrFormat(
          "%s: record %llu has a negative field", path.c_str(),
          (unsigned long long)i));
    }
    prev_arrival = r.arrival_ns;
    trace.records.push_back(r);
  }
  return trace;
}

}  // namespace dgnn::serve
