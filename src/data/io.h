// TSV persistence for datasets, so users can bring their own data and so
// the synthetic presets can be inspected offline.
//
// On-disk layout under a directory:
//   meta.tsv            name \t num_users \t num_items \t num_relations
//   train.tsv           user \t item \t time
//   test.tsv            user \t item \t time
//   social.tsv          u \t v              (u < v)
//   item_relations.tsv  item \t relation
//   eval_negatives.tsv  one row per test interaction: items joined by \t

#ifndef DGNN_DATA_IO_H_
#define DGNN_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace dgnn::data {

util::Status SaveDataset(const Dataset& ds, const std::string& dir);
util::StatusOr<Dataset> LoadDataset(const std::string& dir);

}  // namespace dgnn::data

#endif  // DGNN_DATA_IO_H_
