// TSV persistence for datasets, so users can bring their own data and so
// the synthetic presets can be inspected offline.
//
// On-disk layout under a directory:
//   meta.tsv            name \t num_users \t num_items \t num_relations
//   train.tsv           user \t item \t time
//   test.tsv            user \t item \t time
//   social.tsv          u \t v              (u < v)
//   item_relations.tsv  item \t relation
//   eval_negatives.tsv  one row per test interaction: items joined by \t

#ifndef DGNN_DATA_IO_H_
#define DGNN_DATA_IO_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/fs.h"
#include "util/status.h"

namespace dgnn::data {

util::Status SaveDataset(const Dataset& ds, const std::string& dir);
util::StatusOr<Dataset> LoadDataset(const std::string& dir);

// Streaming writer producing the exact SaveDataset on-disk layout for
// datasets too large to materialize in memory (the million-user
// synthetic worlds): rows are appended incrementally through buffered
// fs::AppendWriter streams, and meta.tsv — which LoadDataset reads
// first — is written LAST by Finish() as the commit marker. A
// generation that crashes mid-stream leaves only *.tmp files and no
// meta.tsv, so LoadDataset refuses the directory instead of seeing a
// half-written dataset.
//
// Test rows and their eval-negative rows must be appended in the same
// user order (the files are parallel arrays, as in SaveDataset).
class DatasetStreamWriter {
 public:
  // Creates `dir` if needed and opens every component stream.
  util::Status Open(const std::string& dir);

  util::Status AppendTrain(int32_t user, int32_t item, int32_t time);
  util::Status AppendTest(int32_t user, int32_t item, int32_t time);
  util::Status AppendSocial(int32_t u, int32_t v);  // requires u < v
  util::Status AppendItemRelation(int32_t item, int32_t relation);
  util::Status AppendEvalNegatives(const std::vector<int32_t>& negatives);

  // Closes every stream (fsync + atomic rename) and then writes meta.tsv,
  // committing the dataset.
  util::Status Finish(const std::string& name, int32_t num_users,
                      int32_t num_items, int32_t num_relations);

  int64_t num_train() const { return num_train_; }
  int64_t num_test() const { return num_test_; }
  int64_t num_social() const { return num_social_; }
  int64_t num_item_relations() const { return num_item_relations_; }
  int64_t total_bytes() const;

 private:
  std::string dir_;
  fs::AppendWriter train_;
  fs::AppendWriter test_;
  fs::AppendWriter social_;
  fs::AppendWriter item_relations_;
  fs::AppendWriter eval_negatives_;
  int64_t num_train_ = 0;
  int64_t num_test_ = 0;
  int64_t num_social_ = 0;
  int64_t num_item_relations_ = 0;
  int64_t num_eval_rows_ = 0;
};

}  // namespace dgnn::data

#endif  // DGNN_DATA_IO_H_
