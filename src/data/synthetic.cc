#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <set>
#include <unordered_set>

#include "util/check.h"

namespace dgnn::data {
namespace {

// Pareto-like draw with mean roughly `mean`, floor `min_v`, capped so a
// single node cannot swallow the dataset.
int32_t PowerLawCount(double mean, int32_t min_v, double power,
                      util::Rng& rng) {
  // Inverse-CDF sampling of a Pareto with x_m chosen to hit the mean:
  // E[X] = x_m * power / (power - 1) for power > 1.
  const double xm = mean * (power - 1.0) / power;
  double u = rng.UniformDouble();
  if (u < 1e-12) u = 1e-12;
  double x = xm / std::pow(u, 1.0 / power);
  x = std::min(x, mean * 12.0);
  return std::max<int32_t>(min_v, static_cast<int32_t>(std::lround(x)));
}

}  // namespace

SyntheticConfig SyntheticConfig::CiaoSmall() {
  SyntheticConfig c;
  c.name = "ciao";
  c.num_users = 300;
  c.num_items = 1400;
  c.num_relations = 16;
  c.num_communities = 8;
  c.mean_interactions_per_user = 16.0;
  c.mean_social_degree = 14.0;  // Ciao has by far the densest social graph
  c.social_homophily = 0.85;
  c.seed = 11;
  return c;
}

SyntheticConfig SyntheticConfig::EpinionsSmall() {
  SyntheticConfig c;
  c.name = "epinions";
  c.num_users = 600;
  c.num_items = 2400;
  c.num_relations = 24;
  c.num_communities = 12;
  c.mean_interactions_per_user = 13.0;
  c.mean_social_degree = 7.0;
  c.social_homophily = 0.8;
  c.seed = 12;
  return c;
}

SyntheticConfig SyntheticConfig::YelpSmall() {
  SyntheticConfig c;
  c.name = "yelp";
  c.num_users = 900;
  c.num_items = 1800;
  c.num_relations = 24;
  c.num_communities = 12;
  c.mean_interactions_per_user = 9.0;
  c.mean_social_degree = 3.5;  // Yelp's social graph is the sparsest
  c.social_homophily = 0.8;
  c.seed = 13;
  return c;
}

SyntheticConfig SyntheticConfig::Tiny() {
  SyntheticConfig c;
  c.name = "tiny";
  c.num_users = 60;
  c.num_items = 150;
  c.num_relations = 6;
  c.num_communities = 3;
  c.mean_interactions_per_user = 10.0;
  c.mean_social_degree = 4.0;
  c.num_eval_negatives = 50;
  c.seed = 5;
  return c;
}

SyntheticConfig SyntheticConfig::Preset(const std::string& name) {
  if (name == "ciao") return CiaoSmall();
  if (name == "epinions") return EpinionsSmall();
  if (name == "yelp") return YelpSmall();
  if (name == "tiny") return Tiny();
  DGNN_CHECK(false) << "unknown dataset preset: " << name;
  return SyntheticConfig();
}

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  DGNN_CHECK_GT(config.num_communities, 0);
  DGNN_CHECK_GE(config.num_relations, config.num_communities);
  util::Rng rng(config.seed);

  Dataset ds;
  ds.name = config.name;
  ds.num_users = config.num_users;
  ds.num_items = config.num_items;
  ds.num_relations = config.num_relations;

  const int32_t k = config.num_communities;

  // Community assignments.
  ds.user_community.resize(static_cast<size_t>(config.num_users));
  for (auto& c : ds.user_community) {
    c = static_cast<int32_t>(rng.UniformInt(k));
  }
  ds.item_community.resize(static_cast<size_t>(config.num_items));
  for (auto& c : ds.item_community) {
    c = static_cast<int32_t>(rng.UniformInt(k));
  }

  // Items grouped by community, each with a Zipf-ish popularity weight so
  // item degree is power-law too.
  std::vector<std::vector<int32_t>> items_in_community(
      static_cast<size_t>(k));
  for (int32_t i = 0; i < config.num_items; ++i) {
    items_in_community[static_cast<size_t>(ds.item_community
                                               [static_cast<size_t>(i)])]
        .push_back(i);
  }
  std::vector<double> item_weight(static_cast<size_t>(config.num_items));
  for (auto& community : items_in_community) {
    rng.Shuffle(community);
    for (size_t rank = 0; rank < community.size(); ++rank) {
      item_weight[static_cast<size_t>(community[rank])] =
          1.0 / std::pow(static_cast<double>(rank + 1), 0.8);
    }
  }
  std::vector<std::vector<double>> community_weights(static_cast<size_t>(k));
  for (int32_t c = 0; c < k; ++c) {
    for (int32_t item : items_in_community[static_cast<size_t>(c)]) {
      community_weights[static_cast<size_t>(c)].push_back(
          item_weight[static_cast<size_t>(item)]);
    }
  }

  // Social groups: the friendship factor. It matches the taste community
  // for `social_taste_overlap` of the users and is independent otherwise
  // (the paper's "social polysemy" — users befriend colleagues and family
  // as well as taste-mates).
  ds.user_social_group.resize(static_cast<size_t>(config.num_users));
  for (int32_t u = 0; u < config.num_users; ++u) {
    ds.user_social_group[static_cast<size_t>(u)] =
        rng.UniformDouble() < config.social_taste_overlap
            ? ds.user_community[static_cast<size_t>(u)]
            : static_cast<int32_t>(rng.UniformInt(k));
  }

  // Per-user social influence level.
  ds.user_social_influence.resize(static_cast<size_t>(config.num_users));
  for (auto& b : ds.user_social_influence) {
    b = static_cast<float>(rng.UniformDouble() * config.max_social_influence);
  }

  // Social ties: homophilous on the social group.
  std::vector<std::vector<int32_t>> users_in_group(static_cast<size_t>(k));
  for (int32_t u = 0; u < config.num_users; ++u) {
    users_in_group[static_cast<size_t>(
                       ds.user_social_group[static_cast<size_t>(u)])]
        .push_back(u);
  }
  std::set<std::pair<int32_t, int32_t>> ties;
  for (int32_t u = 0; u < config.num_users; ++u) {
    const int32_t gu = ds.user_social_group[static_cast<size_t>(u)];
    // Half the expected degree initiated by each endpoint.
    const int32_t want = PowerLawCount(config.mean_social_degree / 2.0, 1,
                                       config.degree_power, rng);
    int attempts = 0;
    int made = 0;
    while (made < want && attempts < want * 20) {
      ++attempts;
      int32_t v;
      if (rng.UniformDouble() < config.social_homophily &&
          users_in_group[static_cast<size_t>(gu)].size() > 1) {
        const auto& pool = users_in_group[static_cast<size_t>(gu)];
        v = pool[static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(pool.size())))];
      } else {
        v = static_cast<int32_t>(rng.UniformInt(config.num_users));
      }
      if (v == u) continue;
      auto key = std::minmax(u, v);
      if (ties.insert({key.first, key.second}).second) ++made;
    }
  }
  ds.social.assign(ties.begin(), ties.end());
  auto friends_of = ds.SocialNeighbors();

  // Interactions, pass 1: taste-driven picks (per-user counts power-law).
  std::vector<int32_t> taste_count(static_cast<size_t>(config.num_users));
  std::vector<int32_t> social_count(static_cast<size_t>(config.num_users));
  std::vector<std::vector<int32_t>> picked(
      static_cast<size_t>(config.num_users));
  for (int32_t u = 0; u < config.num_users; ++u) {
    const int32_t cu = ds.user_community[static_cast<size_t>(u)];
    const int32_t want = PowerLawCount(config.mean_interactions_per_user,
                                       config.min_interactions_per_user,
                                       config.degree_power, rng);
    const float beta = ds.user_social_influence[static_cast<size_t>(u)];
    social_count[static_cast<size_t>(u)] =
        static_cast<int32_t>(std::lround(want * beta));
    taste_count[static_cast<size_t>(u)] =
        want - social_count[static_cast<size_t>(u)];
    std::unordered_set<int32_t> seen;
    int attempts = 0;
    while (static_cast<int32_t>(seen.size()) <
               taste_count[static_cast<size_t>(u)] &&
           attempts < want * 20) {
      ++attempts;
      int32_t item;
      if (rng.UniformDouble() < config.preference_strength &&
          !items_in_community[static_cast<size_t>(cu)].empty()) {
        const auto& pool = items_in_community[static_cast<size_t>(cu)];
        const auto& w = community_weights[static_cast<size_t>(cu)];
        item = pool[static_cast<size_t>(rng.Categorical(w))];
      } else {
        item = static_cast<int32_t>(rng.UniformInt(config.num_items));
      }
      if (seen.insert(item).second) {
        picked[static_cast<size_t>(u)].push_back(item);
      }
    }
  }

  // Interactions, pass 2: socially-driven picks copied from friends'
  // taste-driven histories (falling back to own taste when isolated).
  for (int32_t u = 0; u < config.num_users; ++u) {
    const auto& friends = friends_of[static_cast<size_t>(u)];
    std::unordered_set<int32_t> seen(picked[static_cast<size_t>(u)].begin(),
                                     picked[static_cast<size_t>(u)].end());
    const int32_t cu = ds.user_community[static_cast<size_t>(u)];
    int attempts = 0;
    int made = 0;
    const int32_t want = social_count[static_cast<size_t>(u)];
    while (made < want && attempts < want * 20 + 20) {
      ++attempts;
      int32_t item = -1;
      if (!friends.empty()) {
        const int32_t f = friends[static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(friends.size())))];
        const auto& flist = picked[static_cast<size_t>(f)];
        if (!flist.empty()) {
          item = flist[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(flist.size())))];
        }
      }
      if (item < 0) {
        const auto& pool = items_in_community[static_cast<size_t>(cu)];
        if (pool.empty()) continue;
        const auto& w = community_weights[static_cast<size_t>(cu)];
        item = pool[static_cast<size_t>(rng.Categorical(w))];
      }
      if (seen.insert(item).second) {
        picked[static_cast<size_t>(u)].push_back(item);
        ++made;
      }
    }
  }

  // Emit interactions in a per-user random order (the held-out last item
  // is then a fair draw from the user's taste/social mixture).
  for (int32_t u = 0; u < config.num_users; ++u) {
    auto& items = picked[static_cast<size_t>(u)];
    rng.Shuffle(items);
    int32_t t = 0;
    for (int32_t item : items) {
      ds.train.push_back(Interaction{u, item, t++});
    }
  }

  // Item-relation links: categories are partitioned across communities;
  // every item links to one category of its community, plus occasional
  // extra links (cross-category products).
  const int32_t cats_per_community = config.num_relations / k;
  DGNN_CHECK_GT(cats_per_community, 0);
  std::set<std::pair<int32_t, int32_t>> links;
  for (int32_t i = 0; i < config.num_items; ++i) {
    const int32_t ci = ds.item_community[static_cast<size_t>(i)];
    const int32_t base = ci * cats_per_community;
    const int32_t own =
        base + static_cast<int32_t>(rng.UniformInt(cats_per_community));
    links.insert({i, own});
    double extra = config.extra_relations_per_item;
    while (extra > 0 && rng.UniformDouble() < extra) {
      links.insert(
          {i, static_cast<int32_t>(rng.UniformInt(config.num_relations))});
      extra -= 1.0;
    }
  }
  ds.item_relations.assign(links.begin(), links.end());

  ds.SplitLeaveOneOut(config.min_train_interactions,
                      config.num_eval_negatives, rng);
  ds.Validate();
  return ds;
}

}  // namespace dgnn::data
