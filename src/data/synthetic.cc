#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "data/io.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace dgnn::data {
namespace {

// Pareto-like draw with mean roughly `mean`, floor `min_v`, capped so a
// single node cannot swallow the dataset.
int32_t PowerLawCount(double mean, int32_t min_v, double power,
                      util::Rng& rng) {
  // Inverse-CDF sampling of a Pareto with x_m chosen to hit the mean:
  // E[X] = x_m * power / (power - 1) for power > 1.
  const double xm = mean * (power - 1.0) / power;
  double u = rng.UniformDouble();
  if (u < 1e-12) u = 1e-12;
  double x = xm / std::pow(u, 1.0 / power);
  x = std::min(x, mean * 12.0);
  return std::max<int32_t>(min_v, static_cast<int32_t>(std::lround(x)));
}

// `n` event timestamps in [0, horizon), sorted ascending, drawn under a
// diurnal intensity (sinusoidal with ~30 cycles across the horizon) via
// rejection sampling — interactions cluster into "daytime" waves the way
// review-site events do.
std::vector<int32_t> DrawEventTimes(int n, int64_t horizon,
                                    util::Rng& rng) {
  const double period =
      std::max(1.0, static_cast<double>(horizon) / 30.0);
  std::vector<int32_t> times;
  times.reserve(static_cast<size_t>(n));
  while (static_cast<int>(times.size()) < n) {
    const int64_t t = rng.UniformInt(horizon);
    const double intensity =
        0.5 * (1.0 + std::sin(2.0 * M_PI * static_cast<double>(t) /
                              period));
    // Accept with probability in [0.1, 1]: the floor keeps night-time
    // events possible (real traffic never drops to zero).
    if (rng.UniformDouble() < 0.1 + 0.9 * intensity) {
      times.push_back(static_cast<int32_t>(t));
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

SyntheticConfig SyntheticConfig::CiaoSmall() {
  SyntheticConfig c;
  c.name = "ciao";
  c.num_users = 300;
  c.num_items = 1400;
  c.num_relations = 16;
  c.num_communities = 8;
  c.mean_interactions_per_user = 16.0;
  c.mean_social_degree = 14.0;  // Ciao has by far the densest social graph
  c.social_homophily = 0.85;
  c.seed = 11;
  return c;
}

SyntheticConfig SyntheticConfig::EpinionsSmall() {
  SyntheticConfig c;
  c.name = "epinions";
  c.num_users = 600;
  c.num_items = 2400;
  c.num_relations = 24;
  c.num_communities = 12;
  c.mean_interactions_per_user = 13.0;
  c.mean_social_degree = 7.0;
  c.social_homophily = 0.8;
  c.seed = 12;
  return c;
}

SyntheticConfig SyntheticConfig::YelpSmall() {
  SyntheticConfig c;
  c.name = "yelp";
  c.num_users = 900;
  c.num_items = 1800;
  c.num_relations = 24;
  c.num_communities = 12;
  c.mean_interactions_per_user = 9.0;
  c.mean_social_degree = 3.5;  // Yelp's social graph is the sparsest
  c.social_homophily = 0.8;
  c.seed = 13;
  return c;
}

SyntheticConfig SyntheticConfig::Tiny() {
  SyntheticConfig c;
  c.name = "tiny";
  c.num_users = 60;
  c.num_items = 150;
  c.num_relations = 6;
  c.num_communities = 3;
  c.mean_interactions_per_user = 10.0;
  c.mean_social_degree = 4.0;
  c.num_eval_negatives = 50;
  c.seed = 5;
  return c;
}

// The large presets keep Table I's density ordering at million-user
// scale: Ciao densest in both interactions-per-item and social degree,
// Epinions in the middle, Yelp sparsest. Interaction density is
// mean_interactions / num_items, so the ordering below is
// 8.0e-6 > 4.6e-6 > 3.3e-6; social degree orders 14 > 7 > 3.5.
SyntheticConfig SyntheticConfig::CiaoLarge() {
  SyntheticConfig c;
  c.name = "ciao-large";
  c.num_users = 1000000;
  c.num_items = 2000000;
  c.num_relations = 64;
  c.num_communities = 32;
  c.mean_interactions_per_user = 16.0;
  c.mean_social_degree = 14.0;
  c.social_homophily = 0.85;
  c.eval_fraction = 0.01;
  c.time_horizon = 2592000;  // 30 days of seconds
  c.seed = 21;
  return c;
}

SyntheticConfig SyntheticConfig::EpinionsLarge() {
  SyntheticConfig c;
  c.name = "epinions-large";
  c.num_users = 1200000;
  c.num_items = 2600000;
  c.num_relations = 96;
  c.num_communities = 48;
  c.mean_interactions_per_user = 12.0;
  c.mean_social_degree = 7.0;
  c.social_homophily = 0.8;
  c.eval_fraction = 0.01;
  c.time_horizon = 2592000;
  c.seed = 22;
  return c;
}

SyntheticConfig SyntheticConfig::YelpLarge() {
  SyntheticConfig c;
  c.name = "yelp-large";
  c.num_users = 1500000;
  c.num_items = 2400000;
  c.num_relations = 96;
  c.num_communities = 48;
  c.mean_interactions_per_user = 8.0;
  c.mean_social_degree = 3.5;
  c.social_homophily = 0.8;
  c.eval_fraction = 0.01;
  c.time_horizon = 2592000;
  c.seed = 23;
  return c;
}

SyntheticConfig SyntheticConfig::Preset(const std::string& name) {
  if (name == "ciao") return CiaoSmall();
  if (name == "epinions") return EpinionsSmall();
  if (name == "yelp") return YelpSmall();
  if (name == "tiny") return Tiny();
  if (name == "ciao-large") return CiaoLarge();
  if (name == "epinions-large") return EpinionsLarge();
  if (name == "yelp-large") return YelpLarge();
  DGNN_CHECK(false) << "unknown dataset preset: " << name;
  return SyntheticConfig();
}

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  DGNN_CHECK_GT(config.num_communities, 0);
  DGNN_CHECK_GE(config.num_relations, config.num_communities);
  util::Rng rng(config.seed);

  Dataset ds;
  ds.name = config.name;
  ds.num_users = config.num_users;
  ds.num_items = config.num_items;
  ds.num_relations = config.num_relations;

  const int32_t k = config.num_communities;

  // Community assignments.
  ds.user_community.resize(static_cast<size_t>(config.num_users));
  for (auto& c : ds.user_community) {
    c = static_cast<int32_t>(rng.UniformInt(k));
  }
  ds.item_community.resize(static_cast<size_t>(config.num_items));
  for (auto& c : ds.item_community) {
    c = static_cast<int32_t>(rng.UniformInt(k));
  }

  // Items grouped by community, each with a Zipf-ish popularity weight so
  // item degree is power-law too.
  std::vector<std::vector<int32_t>> items_in_community(
      static_cast<size_t>(k));
  for (int32_t i = 0; i < config.num_items; ++i) {
    items_in_community[static_cast<size_t>(ds.item_community
                                               [static_cast<size_t>(i)])]
        .push_back(i);
  }
  std::vector<double> item_weight(static_cast<size_t>(config.num_items));
  for (auto& community : items_in_community) {
    rng.Shuffle(community);
    for (size_t rank = 0; rank < community.size(); ++rank) {
      item_weight[static_cast<size_t>(community[rank])] =
          1.0 / std::pow(static_cast<double>(rank + 1), 0.8);
    }
  }
  // Prefix sums over the pool-order weights: popularity draws are
  // inverse-CDF binary searches (one uniform per draw, same distribution
  // and RNG consumption as Rng::Categorical's linear scan, but O(log n)
  // — the scan made million-item presets quadratic in practice).
  std::vector<std::vector<double>> community_cum(static_cast<size_t>(k));
  for (int32_t c = 0; c < k; ++c) {
    auto& cum = community_cum[static_cast<size_t>(c)];
    cum.reserve(items_in_community[static_cast<size_t>(c)].size());
    double total = 0.0;
    for (int32_t item : items_in_community[static_cast<size_t>(c)]) {
      total += item_weight[static_cast<size_t>(item)];
      cum.push_back(total);
    }
  }
  auto draw_pool_item = [&rng](const std::vector<int32_t>& pool,
                               const std::vector<double>& cum) {
    const double x = rng.UniformDouble() * cum.back();
    size_t idx = static_cast<size_t>(
        std::upper_bound(cum.begin(), cum.end(), x) - cum.begin());
    if (idx >= pool.size()) idx = pool.size() - 1;
    return pool[idx];
  };

  // Social groups: the friendship factor. It matches the taste community
  // for `social_taste_overlap` of the users and is independent otherwise
  // (the paper's "social polysemy" — users befriend colleagues and family
  // as well as taste-mates).
  ds.user_social_group.resize(static_cast<size_t>(config.num_users));
  for (int32_t u = 0; u < config.num_users; ++u) {
    ds.user_social_group[static_cast<size_t>(u)] =
        rng.UniformDouble() < config.social_taste_overlap
            ? ds.user_community[static_cast<size_t>(u)]
            : static_cast<int32_t>(rng.UniformInt(k));
  }

  // Per-user social influence level.
  ds.user_social_influence.resize(static_cast<size_t>(config.num_users));
  for (auto& b : ds.user_social_influence) {
    b = static_cast<float>(rng.UniformDouble() * config.max_social_influence);
  }

  // Social ties: homophilous on the social group.
  std::vector<std::vector<int32_t>> users_in_group(static_cast<size_t>(k));
  for (int32_t u = 0; u < config.num_users; ++u) {
    users_in_group[static_cast<size_t>(
                       ds.user_social_group[static_cast<size_t>(u)])]
        .push_back(u);
  }
  std::set<std::pair<int32_t, int32_t>> ties;
  for (int32_t u = 0; u < config.num_users; ++u) {
    const int32_t gu = ds.user_social_group[static_cast<size_t>(u)];
    // Half the expected degree initiated by each endpoint.
    const int32_t want = PowerLawCount(config.mean_social_degree / 2.0, 1,
                                       config.degree_power, rng);
    int attempts = 0;
    int made = 0;
    while (made < want && attempts < want * 20) {
      ++attempts;
      int32_t v;
      if (rng.UniformDouble() < config.social_homophily &&
          users_in_group[static_cast<size_t>(gu)].size() > 1) {
        const auto& pool = users_in_group[static_cast<size_t>(gu)];
        v = pool[static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(pool.size())))];
      } else {
        v = static_cast<int32_t>(rng.UniformInt(config.num_users));
      }
      if (v == u) continue;
      auto key = std::minmax(u, v);
      if (ties.insert({key.first, key.second}).second) ++made;
    }
  }
  ds.social.assign(ties.begin(), ties.end());
  auto friends_of = ds.SocialNeighbors();

  // Interactions, pass 1: taste-driven picks (per-user counts power-law).
  std::vector<int32_t> taste_count(static_cast<size_t>(config.num_users));
  std::vector<int32_t> social_count(static_cast<size_t>(config.num_users));
  std::vector<std::vector<int32_t>> picked(
      static_cast<size_t>(config.num_users));
  for (int32_t u = 0; u < config.num_users; ++u) {
    const int32_t cu = ds.user_community[static_cast<size_t>(u)];
    const int32_t want = PowerLawCount(config.mean_interactions_per_user,
                                       config.min_interactions_per_user,
                                       config.degree_power, rng);
    const float beta = ds.user_social_influence[static_cast<size_t>(u)];
    social_count[static_cast<size_t>(u)] =
        static_cast<int32_t>(std::lround(want * beta));
    taste_count[static_cast<size_t>(u)] =
        want - social_count[static_cast<size_t>(u)];
    std::unordered_set<int32_t> seen;
    int attempts = 0;
    while (static_cast<int32_t>(seen.size()) <
               taste_count[static_cast<size_t>(u)] &&
           attempts < want * 20) {
      ++attempts;
      int32_t item;
      if (rng.UniformDouble() < config.preference_strength &&
          !items_in_community[static_cast<size_t>(cu)].empty()) {
        item = draw_pool_item(items_in_community[static_cast<size_t>(cu)],
                              community_cum[static_cast<size_t>(cu)]);
      } else {
        item = static_cast<int32_t>(rng.UniformInt(config.num_items));
      }
      if (seen.insert(item).second) {
        picked[static_cast<size_t>(u)].push_back(item);
      }
    }
  }

  // Interactions, pass 2: socially-driven picks copied from friends'
  // taste-driven histories (falling back to own taste when isolated).
  for (int32_t u = 0; u < config.num_users; ++u) {
    const auto& friends = friends_of[static_cast<size_t>(u)];
    std::unordered_set<int32_t> seen(picked[static_cast<size_t>(u)].begin(),
                                     picked[static_cast<size_t>(u)].end());
    const int32_t cu = ds.user_community[static_cast<size_t>(u)];
    int attempts = 0;
    int made = 0;
    const int32_t want = social_count[static_cast<size_t>(u)];
    while (made < want && attempts < want * 20 + 20) {
      ++attempts;
      int32_t item = -1;
      if (!friends.empty()) {
        const int32_t f = friends[static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(friends.size())))];
        const auto& flist = picked[static_cast<size_t>(f)];
        if (!flist.empty()) {
          item = flist[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(flist.size())))];
        }
      }
      if (item < 0) {
        const auto& pool = items_in_community[static_cast<size_t>(cu)];
        if (pool.empty()) continue;
        item = draw_pool_item(pool, community_cum[static_cast<size_t>(cu)]);
      }
      if (seen.insert(item).second) {
        picked[static_cast<size_t>(u)].push_back(item);
        ++made;
      }
    }
  }

  // Emit interactions in a per-user random order (the held-out last item
  // is then a fair draw from the user's taste/social mixture). With a
  // time horizon, ordinal times become diurnal event timestamps (still
  // ascending per user, so leave-one-out keeps holding out the
  // chronologically-last pick).
  for (int32_t u = 0; u < config.num_users; ++u) {
    auto& items = picked[static_cast<size_t>(u)];
    rng.Shuffle(items);
    std::vector<int32_t> times;
    if (config.time_horizon > 0) {
      times = DrawEventTimes(static_cast<int>(items.size()),
                             config.time_horizon, rng);
    }
    for (size_t i = 0; i < items.size(); ++i) {
      const int32_t t =
          times.empty() ? static_cast<int32_t>(i) : times[i];
      ds.train.push_back(Interaction{u, items[i], t});
    }
  }

  // Item-relation links: categories are partitioned across communities;
  // every item links to one category of its community, plus occasional
  // extra links (cross-category products).
  const int32_t cats_per_community = config.num_relations / k;
  DGNN_CHECK_GT(cats_per_community, 0);
  std::set<std::pair<int32_t, int32_t>> links;
  for (int32_t i = 0; i < config.num_items; ++i) {
    const int32_t ci = ds.item_community[static_cast<size_t>(i)];
    const int32_t base = ci * cats_per_community;
    const int32_t own =
        base + static_cast<int32_t>(rng.UniformInt(cats_per_community));
    links.insert({i, own});
    double extra = config.extra_relations_per_item;
    while (extra > 0 && rng.UniformDouble() < extra) {
      links.insert(
          {i, static_cast<int32_t>(rng.UniformInt(config.num_relations))});
      extra -= 1.0;
    }
  }
  ds.item_relations.assign(links.begin(), links.end());

  ds.SplitLeaveOneOut(config.min_train_interactions,
                      config.num_eval_negatives, rng,
                      config.eval_fraction);
  ds.Validate();
  return ds;
}

// ---------------------------------------------------------------------------
// Streaming generation
// ---------------------------------------------------------------------------
//
// The streaming path never materializes the interaction set: per-user
// picks are generated, split, and flushed through a DatasetStreamWriter
// one user at a time. Resident state is the per-user/per-item annotation
// arrays, the deduplicated social edge list, and a CSR adjacency over it
// — O(users + items + ties), independent of mean_interactions_per_user.
//
// Two deliberate deviations from the in-memory path, both because the
// exact equivalents are O(total interactions) resident:
//  * item popularity is sampled by inverse-CDF binary search over
//    per-community Zipf prefix sums (identical distribution, O(log n)
//    per draw instead of Rng::Categorical's O(n) scan);
//  * socially-driven picks draw from the chosen friend's
//    taste-community distribution instead of the friend's explicit
//    pick history (same homophily signal, no resident histories).

namespace {

// Per-community Zipf item pools with prefix sums for O(log n)
// inverse-CDF sampling. Pool order is a random shuffle; rank r has
// weight 1/(r+1)^0.8, matching the in-memory generator's popularity law.
struct CommunityPools {
  std::vector<std::vector<int32_t>> items;  // [community][rank] -> item
  std::vector<std::vector<double>> cum;     // prefix sums of rank weights

  int64_t ResidentBytes() const {
    int64_t bytes = 0;
    for (const auto& v : items) {
      bytes += static_cast<int64_t>(v.capacity()) * sizeof(int32_t);
    }
    for (const auto& v : cum) {
      bytes += static_cast<int64_t>(v.capacity()) * sizeof(double);
    }
    return bytes;
  }

  // Item drawn Zipf-proportionally from community c; -1 when empty.
  int32_t Sample(int32_t c, util::Rng& rng) const {
    const auto& pool = items[static_cast<size_t>(c)];
    if (pool.empty()) return -1;
    const auto& sums = cum[static_cast<size_t>(c)];
    const double x = rng.UniformDouble() * sums.back();
    const auto it = std::upper_bound(sums.begin(), sums.end(), x);
    size_t idx = static_cast<size_t>(it - sums.begin());
    if (idx >= pool.size()) idx = pool.size() - 1;
    return pool[idx];
  }
};

template <typename T>
int64_t VecBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.capacity()) * sizeof(T);
}

}  // namespace

util::StatusOr<StreamStats> GenerateSyntheticStream(
    const SyntheticConfig& config, const std::string& dir) {
  DGNN_CHECK_GT(config.num_communities, 0);
  DGNN_CHECK_GE(config.num_relations, config.num_communities);
  DGNN_CHECK_GT(config.num_users, 0);
  DGNN_CHECK_GT(config.num_items, 0);
  util::Stopwatch watch;
  util::Rng rng(config.seed);
  const int32_t k = config.num_communities;

  DatasetStreamWriter writer;
  DGNN_RETURN_IF_ERROR(writer.Open(dir));

  StreamStats stats;
  int64_t resident = 0;
  auto note_resident = [&](int64_t bytes) {
    resident = std::max(resident, bytes);
  };

  // Latent factors (same draw semantics as the in-memory path).
  std::vector<int32_t> user_community(
      static_cast<size_t>(config.num_users));
  for (auto& c : user_community) {
    c = static_cast<int32_t>(rng.UniformInt(k));
  }
  std::vector<int32_t> item_community(
      static_cast<size_t>(config.num_items));
  for (auto& c : item_community) {
    c = static_cast<int32_t>(rng.UniformInt(k));
  }

  CommunityPools pools;
  pools.items.resize(static_cast<size_t>(k));
  pools.cum.resize(static_cast<size_t>(k));
  for (int32_t i = 0; i < config.num_items; ++i) {
    pools.items[static_cast<size_t>(item_community[static_cast<size_t>(i)])]
        .push_back(i);
  }
  for (int32_t c = 0; c < k; ++c) {
    auto& pool = pools.items[static_cast<size_t>(c)];
    rng.Shuffle(pool);
    auto& cum = pools.cum[static_cast<size_t>(c)];
    cum.reserve(pool.size());
    double total = 0.0;
    for (size_t rank = 0; rank < pool.size(); ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), 0.8);
      cum.push_back(total);
    }
  }

  std::vector<int32_t> user_social_group(
      static_cast<size_t>(config.num_users));
  for (int32_t u = 0; u < config.num_users; ++u) {
    user_social_group[static_cast<size_t>(u)] =
        rng.UniformDouble() < config.social_taste_overlap
            ? user_community[static_cast<size_t>(u)]
            : static_cast<int32_t>(rng.UniformInt(k));
  }
  std::vector<float> user_social_influence(
      static_cast<size_t>(config.num_users));
  for (auto& b : user_social_influence) {
    b = static_cast<float>(rng.UniformDouble() *
                           config.max_social_influence);
  }

  // Social ties. Candidate edges are collected as packed (lo << 32 | hi)
  // keys — per-user duplicates are filtered inline with a small scratch
  // set, cross-user duplicates by one global sort+unique (cheaper and
  // far smaller than a hash set over millions of pairs).
  std::vector<std::vector<int32_t>> users_in_group(
      static_cast<size_t>(k));
  for (int32_t u = 0; u < config.num_users; ++u) {
    users_in_group[static_cast<size_t>(
                       user_social_group[static_cast<size_t>(u)])]
        .push_back(u);
  }
  int64_t users_in_group_bytes = 0;
  for (const auto& g : users_in_group) users_in_group_bytes += VecBytes(g);

  std::vector<uint64_t> edges;
  edges.reserve(static_cast<size_t>(
      static_cast<double>(config.num_users) *
      (config.mean_social_degree / 2.0 + 1.0)));
  {
    std::unordered_set<int32_t> mine;
    for (int32_t u = 0; u < config.num_users; ++u) {
      const int32_t gu = user_social_group[static_cast<size_t>(u)];
      const int32_t want = PowerLawCount(config.mean_social_degree / 2.0,
                                         1, config.degree_power, rng);
      mine.clear();
      int attempts = 0;
      while (static_cast<int32_t>(mine.size()) < want &&
             attempts < want * 20) {
        ++attempts;
        int32_t v;
        if (rng.UniformDouble() < config.social_homophily &&
            users_in_group[static_cast<size_t>(gu)].size() > 1) {
          const auto& pool = users_in_group[static_cast<size_t>(gu)];
          v = pool[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(pool.size())))];
        } else {
          v = static_cast<int32_t>(rng.UniformInt(config.num_users));
        }
        if (v == u) continue;
        if (!mine.insert(v).second) continue;
        const auto key = std::minmax(u, v);
        edges.push_back(
            (static_cast<uint64_t>(static_cast<uint32_t>(key.first))
             << 32) |
            static_cast<uint64_t>(static_cast<uint32_t>(key.second)));
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  int64_t same_group_edges = 0;
  for (const uint64_t e : edges) {
    const int32_t a = static_cast<int32_t>(e >> 32);
    const int32_t b = static_cast<int32_t>(e & 0xffffffffu);
    if (user_social_group[static_cast<size_t>(a)] ==
        user_social_group[static_cast<size_t>(b)]) {
      ++same_group_edges;
    }
    DGNN_RETURN_IF_ERROR(writer.AppendSocial(a, b));
  }
  stats.social_same_group_fraction =
      edges.empty() ? 0.0
                    : static_cast<double>(same_group_edges) /
                          static_cast<double>(edges.size());

  // CSR adjacency over the deduplicated ties (both directions), used by
  // the socially-driven interaction pass.
  std::vector<int64_t> offsets(static_cast<size_t>(config.num_users) + 1,
                               0);
  for (const uint64_t e : edges) {
    ++offsets[static_cast<size_t>(e >> 32) + 1];
    ++offsets[static_cast<size_t>(e & 0xffffffffu) + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  std::vector<int32_t> neighbors(static_cast<size_t>(offsets.back()));
  {
    std::vector<int64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const uint64_t e : edges) {
      const int32_t a = static_cast<int32_t>(e >> 32);
      const int32_t b = static_cast<int32_t>(e & 0xffffffffu);
      neighbors[static_cast<size_t>(cursor[static_cast<size_t>(a)]++)] = b;
      neighbors[static_cast<size_t>(cursor[static_cast<size_t>(b)]++)] = a;
    }
    note_resident(VecBytes(user_community) + VecBytes(item_community) +
                  pools.ResidentBytes() + VecBytes(user_social_group) +
                  VecBytes(user_social_influence) + users_in_group_bytes +
                  VecBytes(edges) + VecBytes(offsets) +
                  VecBytes(neighbors) + VecBytes(cursor));
  }
  stats.num_social = static_cast<int64_t>(edges.size());
  { std::vector<uint64_t>().swap(edges); }
  { std::vector<std::vector<int32_t>>().swap(users_in_group); }

  // Item-relation links, streamed per item (small scratch dedup).
  const int32_t cats_per_community = config.num_relations / k;
  DGNN_CHECK_GT(cats_per_community, 0);
  {
    std::vector<int32_t> links;
    for (int32_t i = 0; i < config.num_items; ++i) {
      const int32_t ci = item_community[static_cast<size_t>(i)];
      const int32_t base = ci * cats_per_community;
      links.clear();
      links.push_back(base + static_cast<int32_t>(
                                 rng.UniformInt(cats_per_community)));
      double extra = config.extra_relations_per_item;
      while (extra > 0 && rng.UniformDouble() < extra) {
        links.push_back(
            static_cast<int32_t>(rng.UniformInt(config.num_relations)));
        extra -= 1.0;
      }
      std::sort(links.begin(), links.end());
      links.erase(std::unique(links.begin(), links.end()), links.end());
      for (const int32_t r : links) {
        DGNN_RETURN_IF_ERROR(writer.AppendItemRelation(i, r));
      }
    }
  }

  // Interactions: generate, timestamp, split, and flush one user at a
  // time. Scratch is bounded by the power-law cap, never by totals.
  int64_t peak_scratch = 0;
  {
    std::vector<int32_t> picks;
    std::vector<int32_t> sorted_seen;
    std::vector<int32_t> negs;
    std::unordered_set<int32_t> seen;
    std::unordered_set<int32_t> chosen;
    for (int32_t u = 0; u < config.num_users; ++u) {
      const int32_t cu = user_community[static_cast<size_t>(u)];
      const int32_t want = PowerLawCount(
          config.mean_interactions_per_user,
          config.min_interactions_per_user, config.degree_power, rng);
      const float beta = user_social_influence[static_cast<size_t>(u)];
      const int32_t social_want =
          static_cast<int32_t>(std::lround(want * beta));
      const int32_t taste_want = want - social_want;
      picks.clear();
      seen.clear();

      int attempts = 0;
      while (static_cast<int32_t>(picks.size()) < taste_want &&
             attempts < want * 20) {
        ++attempts;
        int32_t item;
        if (rng.UniformDouble() < config.preference_strength) {
          item = pools.Sample(cu, rng);
          if (item < 0) {
            item = static_cast<int32_t>(rng.UniformInt(config.num_items));
          }
        } else {
          item = static_cast<int32_t>(rng.UniformInt(config.num_items));
        }
        if (seen.insert(item).second) picks.push_back(item);
      }

      const int64_t nbr_begin = offsets[static_cast<size_t>(u)];
      const int64_t nbr_end = offsets[static_cast<size_t>(u) + 1];
      const int64_t degree = nbr_end - nbr_begin;
      const int32_t total_want =
          static_cast<int32_t>(picks.size()) + social_want;
      attempts = 0;
      while (static_cast<int32_t>(picks.size()) < total_want &&
             attempts < want * 20 + 20) {
        ++attempts;
        int32_t source_community = cu;
        if (degree > 0) {
          const int32_t f = neighbors[static_cast<size_t>(
              nbr_begin + rng.UniformInt(degree))];
          source_community = user_community[static_cast<size_t>(f)];
        }
        int32_t item;
        if (rng.UniformDouble() < config.preference_strength) {
          item = pools.Sample(source_community, rng);
          if (item < 0) {
            item = static_cast<int32_t>(rng.UniformInt(config.num_items));
          }
        } else {
          item = static_cast<int32_t>(rng.UniformInt(config.num_items));
        }
        if (seen.insert(item).second) picks.push_back(item);
      }

      rng.Shuffle(picks);
      std::vector<int32_t> times;
      if (config.time_horizon > 0) {
        times = DrawEventTimes(static_cast<int>(picks.size()),
                               config.time_horizon, rng);
      }
      const int32_t n = static_cast<int32_t>(picks.size());
      const bool eligible = n >= config.min_train_interactions + 1;
      const bool hold_out =
          eligible && (config.eval_fraction >= 1.0 ||
                       rng.Bernoulli(config.eval_fraction));

      // The chronologically-last pick (highest timestamp == last index,
      // since `times` is sorted) is the held-out test item.
      for (int32_t i = 0; i < n - (hold_out ? 1 : 0); ++i) {
        const int32_t t = times.empty() ? i : times[static_cast<size_t>(i)];
        DGNN_RETURN_IF_ERROR(
            writer.AppendTrain(u, picks[static_cast<size_t>(i)], t));
      }
      if (hold_out) {
        const int32_t t =
            times.empty() ? n - 1 : times[static_cast<size_t>(n - 1)];
        DGNN_RETURN_IF_ERROR(
            writer.AppendTest(u, picks[static_cast<size_t>(n - 1)], t));
        sorted_seen.assign(picks.begin(), picks.end());
        std::sort(sorted_seen.begin(), sorted_seen.end());
        negs.clear();
        chosen.clear();
        const int64_t available = static_cast<int64_t>(config.num_items) -
                                  static_cast<int64_t>(sorted_seen.size());
        const int64_t want_negs = std::min<int64_t>(
            config.num_eval_negatives, std::max<int64_t>(available, 0));
        while (static_cast<int64_t>(negs.size()) < want_negs) {
          const int32_t cand =
              static_cast<int32_t>(rng.UniformInt(config.num_items));
          if (std::binary_search(sorted_seen.begin(), sorted_seen.end(),
                                 cand)) {
            continue;
          }
          if (!chosen.insert(cand).second) continue;
          negs.push_back(cand);
        }
        DGNN_RETURN_IF_ERROR(writer.AppendEvalNegatives(negs));
      }

      const int64_t scratch =
          VecBytes(picks) + VecBytes(times) + VecBytes(sorted_seen) +
          VecBytes(negs) +
          static_cast<int64_t>(seen.bucket_count()) *
              static_cast<int64_t>(sizeof(void*)) +
          static_cast<int64_t>(seen.size() + chosen.size()) * 24;
      peak_scratch = std::max(peak_scratch, scratch);
    }
  }

  DGNN_RETURN_IF_ERROR(writer.Finish(config.name, config.num_users,
                                     config.num_items,
                                     config.num_relations));
  stats.num_train = writer.num_train();
  stats.num_test = writer.num_test();
  stats.num_item_relations = writer.num_item_relations();
  stats.bytes_on_disk = writer.total_bytes();
  stats.resident_bytes = resident;
  stats.peak_user_scratch_bytes = peak_scratch;
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

}  // namespace dgnn::data
