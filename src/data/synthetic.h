// Synthetic dataset generation — the stand-in for the paper's Ciao,
// Epinions and Yelp crawls, which are not redistributable.
//
// The generator builds a world with *heterogeneous latent factors*, the
// structure the paper's disentangling argument is about:
//   * every user has a TASTE community driving most interactions, and a
//     separate SOCIAL group driving friendships; the two coincide only
//     for a fraction of users (social polysemy — friends are not always
//     taste-mates),
//   * every user has an individual social-influence level beta_u: that
//     fraction of their interactions are copied from friends' histories
//     (socially driven) rather than drawn from their own taste community,
//   * relation nodes act as item categories aligned with taste
//     communities, so T carries item-side semantics.
// Hence each auxiliary relation carries real but *entangled* signal whose
// usefulness varies per user — uniform propagation over-smooths, and
// models that can weight relations per node (the paper's memory gates)
// have something real to learn. Degree distributions are power-law on
// both sides, matching review-site data. Presets scale Table I's three
// datasets down to single-core size while keeping their density ordering
// (Ciao densest, Yelp sparsest in interactions; Ciao densest in social
// ties).

#ifndef DGNN_DATA_SYNTHETIC_H_
#define DGNN_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"

namespace dgnn::data {

struct SyntheticConfig {
  std::string name = "synthetic";
  int32_t num_users = 300;
  int32_t num_items = 1000;
  // Relation (category) nodes; each community owns
  // num_relations / num_communities of them.
  int32_t num_relations = 16;
  int32_t num_communities = 8;

  // Power-law (Pareto) interaction counts per user.
  double mean_interactions_per_user = 14.0;
  int32_t min_interactions_per_user = 4;
  double degree_power = 1.6;  // Pareto tail exponent

  // Probability an interaction follows the user's community preference
  // (the rest are uniform noise).
  double preference_strength = 0.88;

  // Social graph. Homophily acts on the *social group*, not the taste
  // community; the two coincide for `social_taste_overlap` of the users.
  double mean_social_degree = 8.0;
  double social_homophily = 0.85;
  double social_taste_overlap = 0.5;

  // Per-user social influence: beta_u ~ U(0, max_social_influence); that
  // fraction of the user's interactions are copied from friends'
  // histories instead of drawn from the taste community.
  double max_social_influence = 0.8;

  // Item-relation links: each item links to its own category, plus this
  // expected number of extra categories.
  double extra_relations_per_item = 0.3;

  // Split parameters (paper protocol: 100 negatives per test user).
  int32_t min_train_interactions = 2;
  int32_t num_eval_negatives = 100;

  uint64_t seed = 7;

  // Presets mirroring Table I at reduced scale.
  static SyntheticConfig CiaoSmall();
  static SyntheticConfig EpinionsSmall();
  static SyntheticConfig YelpSmall();
  // A tiny preset for unit tests.
  static SyntheticConfig Tiny();

  // Resolves a preset by name ("ciao", "epinions", "yelp", "tiny");
  // CHECK-fails on unknown names.
  static SyntheticConfig Preset(const std::string& name);
};

// Generates a dataset (already split, with eval negatives, validated).
Dataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace dgnn::data

#endif  // DGNN_DATA_SYNTHETIC_H_
