// Synthetic dataset generation — the stand-in for the paper's Ciao,
// Epinions and Yelp crawls, which are not redistributable.
//
// The generator builds a world with *heterogeneous latent factors*, the
// structure the paper's disentangling argument is about:
//   * every user has a TASTE community driving most interactions, and a
//     separate SOCIAL group driving friendships; the two coincide only
//     for a fraction of users (social polysemy — friends are not always
//     taste-mates),
//   * every user has an individual social-influence level beta_u: that
//     fraction of their interactions are copied from friends' histories
//     (socially driven) rather than drawn from their own taste community,
//   * relation nodes act as item categories aligned with taste
//     communities, so T carries item-side semantics.
// Hence each auxiliary relation carries real but *entangled* signal whose
// usefulness varies per user — uniform propagation over-smooths, and
// models that can weight relations per node (the paper's memory gates)
// have something real to learn. Degree distributions are power-law on
// both sides, matching review-site data. Presets scale Table I's three
// datasets down to single-core size while keeping their density ordering
// (Ciao densest, Yelp sparsest in interactions; Ciao densest in social
// ties).

#ifndef DGNN_DATA_SYNTHETIC_H_
#define DGNN_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace dgnn::data {

struct SyntheticConfig {
  std::string name = "synthetic";
  int32_t num_users = 300;
  int32_t num_items = 1000;
  // Relation (category) nodes; each community owns
  // num_relations / num_communities of them.
  int32_t num_relations = 16;
  int32_t num_communities = 8;

  // Power-law (Pareto) interaction counts per user.
  double mean_interactions_per_user = 14.0;
  int32_t min_interactions_per_user = 4;
  double degree_power = 1.6;  // Pareto tail exponent

  // Probability an interaction follows the user's community preference
  // (the rest are uniform noise).
  double preference_strength = 0.88;

  // Social graph. Homophily acts on the *social group*, not the taste
  // community; the two coincide for `social_taste_overlap` of the users.
  double mean_social_degree = 8.0;
  double social_homophily = 0.85;
  double social_taste_overlap = 0.5;

  // Per-user social influence: beta_u ~ U(0, max_social_influence); that
  // fraction of the user's interactions are copied from friends'
  // histories instead of drawn from the taste community.
  double max_social_influence = 0.8;

  // Item-relation links: each item links to its own category, plus this
  // expected number of extra categories.
  double extra_relations_per_item = 0.3;

  // Split parameters (paper protocol: 100 negatives per test user).
  int32_t min_train_interactions = 2;
  int32_t num_eval_negatives = 100;

  // Fraction of eligible users that receive a leave-one-out test row
  // (plus eval negatives). 1.0 is the paper protocol; the large presets
  // sample a subset so a million-user world does not drag ~100M negative
  // ids through the eval files.
  double eval_fraction = 1.0;

  // Event-time horizon for interaction timestamps. 0 keeps per-user
  // ordinal times (0, 1, 2, ...). When > 0, each interaction gets an
  // event timestamp drawn from [0, time_horizon) under a diurnal
  // (sinusoidal, ~30 cycles across the horizon) intensity, sorted per
  // user — so session models and arrival-replay tooling see realistic
  // clustered event times.
  int64_t time_horizon = 0;

  uint64_t seed = 7;

  // Presets mirroring Table I at reduced scale.
  static SyntheticConfig CiaoSmall();
  static SyntheticConfig EpinionsSmall();
  static SyntheticConfig YelpSmall();
  // A tiny preset for unit tests.
  static SyntheticConfig Tiny();
  // Million-user presets preserving Table I's density ordering (Ciao
  // densest in interactions and social ties, Yelp sparsest). Generated
  // through GenerateSyntheticStream — far too large for the in-memory
  // path.
  static SyntheticConfig CiaoLarge();
  static SyntheticConfig EpinionsLarge();
  static SyntheticConfig YelpLarge();

  // Resolves a preset by name ("ciao", "epinions", "yelp", "tiny",
  // "ciao-large", "epinions-large", "yelp-large"); CHECK-fails on
  // unknown names.
  static SyntheticConfig Preset(const std::string& name);
};

// Generates a dataset (already split, with eval negatives, validated).
Dataset GenerateSynthetic(const SyntheticConfig& config);

// Counters and memory bookkeeping reported by a streaming generation.
struct StreamStats {
  int64_t num_train = 0;
  int64_t num_test = 0;
  int64_t num_social = 0;
  int64_t num_item_relations = 0;
  int64_t bytes_on_disk = 0;
  // Bytes held by the generator's resident state at its peak: the
  // per-user/per-item annotation arrays, the deduplicated social edge
  // list, and the adjacency index — all O(users + items + social ties).
  // Interactions stream straight to disk, so this is INDEPENDENT of the
  // interaction count (the property the scale claims rest on; asserted
  // by synthetic_stats_test).
  int64_t resident_bytes = 0;
  // Largest transient per-user scratch (pick list + dedup set) in bytes;
  // bounded by the power-law cap (12x the mean), not by totals.
  int64_t peak_user_scratch_bytes = 0;
  // Fraction of final (deduplicated) social edges whose endpoints share
  // a social group. Ground-truth group labels are never persisted, so
  // the generator measures this itself; expected value is approximately
  // social_homophily + (1 - social_homophily) / num_communities
  // (homophilous picks always match, uniform picks match by chance).
  double social_same_group_fraction = 0.0;
  double seconds = 0.0;
};

// Streams a power-law social world straight to `dir` in the SaveDataset
// layout without ever materializing the interaction set: peak memory is
// O(users + items + social ties) regardless of how many interactions
// are emitted. The statistical contract matches GenerateSynthetic —
// Pareto degree tails with exponent `degree_power` on both sides,
// social homophily `social_homophily` on the social-group factor, and
// the Table I density ordering across presets — with one documented
// approximation: socially-driven picks are drawn from the chosen
// friend's taste-community distribution rather than the friend's
// explicit history (histories are O(total interactions) and never kept
// resident here).
util::StatusOr<StreamStats> GenerateSyntheticStream(
    const SyntheticConfig& config, const std::string& dir);

}  // namespace dgnn::data

#endif  // DGNN_DATA_SYNTHETIC_H_
