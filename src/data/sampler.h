// BPR training batch sampling: (user, positive item, negative item)
// triples drawn from the training interactions (Eq. 11's set O).

#ifndef DGNN_DATA_SAMPLER_H_
#define DGNN_DATA_SAMPLER_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace dgnn::data {

// Complete serializable sampler state: the RNG plus the persistent
// shuffle order. Because SampleEpoch draws ALL of an epoch's randomness
// up front, capturing this at epoch start and replaying SampleEpoch
// after a restore reproduces the epoch's batches exactly — which is how
// checkpoint/resume re-derives the batch stream instead of storing it.
struct SamplerState {
  util::RngState rng;
  std::vector<int32_t> order;
};

struct BprBatch {
  std::vector<int32_t> users;
  std::vector<int32_t> pos_items;
  std::vector<int32_t> neg_items;

  size_t size() const { return users.size(); }
};

class BprSampler {
 public:
  // Keeps a reference to `dataset`; the dataset must outlive the sampler.
  BprSampler(const Dataset& dataset, uint64_t seed);

  // One epoch = one pass over all training interactions in shuffled order,
  // chunked into batches of `batch_size` (last batch may be smaller).
  // Negatives are uniform over items the user never interacted with in
  // training.
  std::vector<BprBatch> SampleEpoch(int batch_size);

  int64_t num_train() const {
    return static_cast<int64_t>(dataset_->train.size());
  }

  // Snapshot / restore everything SampleEpoch's output depends on.
  SamplerState state() const;
  void set_state(const SamplerState& state);

 private:
  // Uniform over the items `user` never interacted with: bounded rejection
  // sampling with an exact order-statistic fallback for near-saturated
  // users, so it always terminates. CHECK-fails (in release builds too)
  // when the user interacted with every item.
  int32_t SampleNegative(int32_t user);

  const Dataset* dataset_;
  util::Rng rng_;
  std::vector<std::vector<int32_t>> items_by_user_;  // sorted
  std::vector<int32_t> order_;  // shuffled index into dataset_->train
};

}  // namespace dgnn::data

#endif  // DGNN_DATA_SAMPLER_H_
