#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace dgnn::data {

DatasetStats Dataset::ComputeStats() const {
  DatasetStats s;
  s.num_users = num_users;
  s.num_items = num_items;
  s.num_relations = num_relations;
  s.num_interactions =
      static_cast<int64_t>(train.size()) + static_cast<int64_t>(test.size());
  s.num_social_ties = static_cast<int64_t>(social.size());
  s.num_item_relation_links = static_cast<int64_t>(item_relations.size());
  if (num_users > 0 && num_items > 0) {
    s.interaction_density =
        static_cast<double>(s.num_interactions) /
        (static_cast<double>(num_users) * static_cast<double>(num_items));
  }
  if (num_users > 1) {
    s.social_density = 2.0 * static_cast<double>(s.num_social_ties) /
                       (static_cast<double>(num_users) *
                        static_cast<double>(num_users - 1));
  }
  return s;
}

std::vector<std::vector<int32_t>> Dataset::TrainItemsByUser() const {
  std::vector<std::vector<int32_t>> out(static_cast<size_t>(num_users));
  for (const auto& it : train) {
    out[static_cast<size_t>(it.user)].push_back(it.item);
  }
  for (auto& v : out) std::sort(v.begin(), v.end());
  return out;
}

std::vector<std::vector<int32_t>> Dataset::SocialNeighbors() const {
  std::vector<std::vector<int32_t>> out(static_cast<size_t>(num_users));
  for (const auto& [u, v] : social) {
    out[static_cast<size_t>(u)].push_back(v);
    out[static_cast<size_t>(v)].push_back(u);
  }
  for (auto& v : out) std::sort(v.begin(), v.end());
  return out;
}

void Dataset::SplitLeaveOneOut(int min_train, int num_negatives,
                               util::Rng& rng, double eval_fraction) {
  DGNN_CHECK(test.empty()) << "SplitLeaveOneOut called twice";
  // Bucket by user, keeping interaction order by time.
  std::vector<std::vector<Interaction>> by_user(
      static_cast<size_t>(num_users));
  for (const auto& it : train) {
    by_user[static_cast<size_t>(it.user)].push_back(it);
  }
  train.clear();
  for (auto& list : by_user) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Interaction& a, const Interaction& b) {
                       return a.time < b.time;
                     });
    if (static_cast<int>(list.size()) >= min_train + 1 &&
        (eval_fraction >= 1.0 || rng.Bernoulli(eval_fraction))) {
      test.push_back(list.back());
      list.pop_back();
    }
    for (const auto& it : list) train.push_back(it);
  }

  // Sample negatives against the user's full (train + test) item set.
  auto items_by_user = TrainItemsByUser();
  for (const auto& t : test) {
    items_by_user[static_cast<size_t>(t.user)].push_back(t.item);
  }
  for (auto& v : items_by_user) std::sort(v.begin(), v.end());

  eval_negatives.clear();
  eval_negatives.reserve(test.size());
  for (const auto& t : test) {
    const auto& seen = items_by_user[static_cast<size_t>(t.user)];
    std::vector<int32_t> negs;
    negs.reserve(static_cast<size_t>(num_negatives));
    std::unordered_set<int32_t> chosen;
    const int64_t available =
        static_cast<int64_t>(num_items) - static_cast<int64_t>(seen.size());
    const int64_t want =
        std::min<int64_t>(num_negatives, std::max<int64_t>(available, 0));
    while (static_cast<int64_t>(negs.size()) < want) {
      int32_t cand = static_cast<int32_t>(rng.UniformInt(num_items));
      if (std::binary_search(seen.begin(), seen.end(), cand)) continue;
      if (!chosen.insert(cand).second) continue;
      negs.push_back(cand);
    }
    eval_negatives.push_back(std::move(negs));
  }
}

void Dataset::Validate() const {
  auto check_interaction = [&](const Interaction& it) {
    DGNN_CHECK_GE(it.user, 0);
    DGNN_CHECK_LT(it.user, num_users);
    DGNN_CHECK_GE(it.item, 0);
    DGNN_CHECK_LT(it.item, num_items);
  };
  for (const auto& it : train) check_interaction(it);
  for (const auto& it : test) check_interaction(it);
  for (const auto& [u, v] : social) {
    DGNN_CHECK_GE(u, 0);
    DGNN_CHECK_LT(u, num_users);
    DGNN_CHECK_GE(v, 0);
    DGNN_CHECK_LT(v, num_users);
    DGNN_CHECK_LT(u, v) << "social ties must be stored once with u < v";
  }
  for (const auto& [i, r] : item_relations) {
    DGNN_CHECK_GE(i, 0);
    DGNN_CHECK_LT(i, num_items);
    DGNN_CHECK_GE(r, 0);
    DGNN_CHECK_LT(r, num_relations);
  }
  DGNN_CHECK_EQ(eval_negatives.size(), test.size());

  // No train/test duplication and negatives are true negatives.
  auto items = TrainItemsByUser();
  for (size_t i = 0; i < test.size(); ++i) {
    const auto& t = test[i];
    const auto& seen = items[static_cast<size_t>(t.user)];
    DGNN_CHECK(!std::binary_search(seen.begin(), seen.end(), t.item))
        << "test item leaked into train for user " << t.user;
    for (int32_t neg : eval_negatives[i]) {
      DGNN_CHECK(neg != t.item);
      DGNN_CHECK(!std::binary_search(seen.begin(), seen.end(), neg))
          << "negative " << neg << " was interacted by user " << t.user;
    }
  }
}

}  // namespace dgnn::data
