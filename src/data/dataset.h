// The in-memory dataset for knowledge-enhanced social recommendation
// (Section III of the paper): user-item interactions Y, user-user social
// ties S, and item-relation links T, plus the leave-one-out evaluation
// split with sampled negatives.

#ifndef DGNN_DATA_DATASET_H_
#define DGNN_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace dgnn::data {

struct Interaction {
  int32_t user = 0;
  int32_t item = 0;
  // Ordinal timestamp (per-user interaction order); lets session-based
  // baselines (DGRec) form sequences.
  int32_t time = 0;
};

struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_relations = 0;
  int64_t num_interactions = 0;
  int64_t num_social_ties = 0;       // undirected pair count
  int64_t num_item_relation_links = 0;
  double interaction_density = 0.0;  // interactions / (users * items)
  double social_density = 0.0;       // 2 * ties / (users * (users - 1))
};

struct Dataset {
  std::string name;
  int32_t num_users = 0;
  int32_t num_items = 0;
  int32_t num_relations = 0;

  std::vector<Interaction> train;
  // Leave-one-out test set: at most one interaction per user.
  std::vector<Interaction> test;
  // Undirected social ties stored once with u < v.
  std::vector<std::pair<int32_t, int32_t>> social;
  // (item, relation-node) links — the matrix T.
  std::vector<std::pair<int32_t, int32_t>> item_relations;
  // Parallel to `test`: 100 (by default) non-interacted items per test
  // user; the paper's ranking protocol scores the positive against these.
  std::vector<std::vector<int32_t>> eval_negatives;

  // Ground-truth latent factors when the dataset is synthetic (empty for
  // loaded data). Used only by diagnostics and the Fig. 9/10 case-study
  // benches, never by models. `user_community` is the taste factor,
  // `user_social_group` the (partially overlapping) friendship factor,
  // `user_social_influence` the per-user fraction of friend-driven
  // interactions.
  std::vector<int32_t> user_community;
  std::vector<int32_t> user_social_group;
  std::vector<float> user_social_influence;
  std::vector<int32_t> item_community;

  DatasetStats ComputeStats() const;

  // Items each user interacted with in training, sorted ascending.
  std::vector<std::vector<int32_t>> TrainItemsByUser() const;
  // Social adjacency as symmetric neighbor lists.
  std::vector<std::vector<int32_t>> SocialNeighbors() const;

  // Moves each user's chronologically-last training interaction into
  // `test` (users with fewer than `min_train` + 1 interactions keep all of
  // theirs for training) and samples `num_negatives` eval negatives per
  // test user. Call once, after `train` is fully populated and `test` is
  // empty. `eval_fraction` < 1 holds out only that Bernoulli fraction of
  // eligible users (large-scale worlds cap their eval footprint this
  // way); 1.0 is the paper protocol.
  void SplitLeaveOneOut(int min_train, int num_negatives, util::Rng& rng,
                        double eval_fraction = 1.0);

  // Internal consistency (index ranges, no test leakage into train,
  // negatives truly negative). CHECK-fails on violation; cheap enough to
  // run in tests and at bench startup.
  void Validate() const;
};

}  // namespace dgnn::data

#endif  // DGNN_DATA_DATASET_H_
