#include "data/io.h"

#include <sys/stat.h>

#include <cerrno>
#include <functional>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/strings.h"

namespace dgnn::data {
namespace {

using util::ParseInt;
using util::Split;
using util::Status;
using util::StatusOr;

// Thin aliases onto the durable fs helpers: dataset TSVs get the same
// EINTR/short-I/O retries and atomic temp+fsync+rename writes as binary
// checkpoints and snapshots.
Status WriteFile(const std::string& path, const std::string& content) {
  return fs::AtomicWriteFile(path, content);
}

StatusOr<std::string> ReadFile(const std::string& path) {
  return fs::ReadFileToString(path);
}

// Parses "a \t b [\t c]" integer rows, skipping blank lines. `fn` receives
// the fields and the 1-based row number (counting every line, so the
// number matches what an editor shows for the offending row).
Status ForEachRow(const std::string& content, size_t min_fields,
                  const std::function<Status(const std::vector<std::string>&,
                                             int64_t)>& fn) {
  int64_t row = 0;
  for (const std::string& line : Split(content, '\n')) {
    ++row;
    if (util::Trim(line).empty()) continue;
    auto fields = Split(line, '\t');
    if (fields.size() < min_fields) {
      return Status::InvalidArgument("short row: '" + line + "'");
    }
    DGNN_RETURN_IF_ERROR(fn(fields, row));
  }
  return Status::Ok();
}

// "<file> row <row>: <what> id <id> out of range [0, <bound>)". Every id
// loaded from disk is validated against the meta.tsv bounds before it can
// reach vector indexing or CSR construction.
Status IdOutOfRange(const std::string& file, int64_t row, const char* what,
                    int64_t id, int64_t bound) {
  return Status::InvalidArgument(util::StrFormat(
      "%s row %lld: %s id %lld out of range [0, %lld)", file.c_str(),
      static_cast<long long>(row), what, static_cast<long long>(id),
      static_cast<long long>(bound)));
}

// Parses field `f` as an id and range-checks it against [0, bound).
StatusOr<int32_t> ParseId(const std::string& file, int64_t row,
                          const char* what, const std::string& field,
                          int64_t bound) {
  auto v = ParseInt(field);
  if (!v.ok()) {
    return Status::InvalidArgument(file + " row " + std::to_string(row) +
                                   ": " + v.status().message());
  }
  if (v.value() < 0 || v.value() >= bound) {
    return IdOutOfRange(file, row, what, v.value(), bound);
  }
  return static_cast<int32_t>(v.value());
}

}  // namespace

Status SaveDataset(const Dataset& ds, const std::string& dir) {
  DGNN_FAILPOINT("data.save_dataset");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create directory: " + dir);
  }
  {
    std::string meta = util::StrFormat("%s\t%d\t%d\t%d\n", ds.name.c_str(),
                                       ds.num_users, ds.num_items,
                                       ds.num_relations);
    DGNN_RETURN_IF_ERROR(WriteFile(dir + "/meta.tsv", meta));
  }
  auto dump_interactions = [&](const std::vector<Interaction>& list,
                               const std::string& file) {
    std::string out;
    for (const auto& it : list) {
      out += util::StrFormat("%d\t%d\t%d\n", it.user, it.item, it.time);
    }
    return WriteFile(dir + "/" + file, out);
  };
  DGNN_RETURN_IF_ERROR(dump_interactions(ds.train, "train.tsv"));
  DGNN_RETURN_IF_ERROR(dump_interactions(ds.test, "test.tsv"));
  {
    std::string out;
    for (const auto& [u, v] : ds.social) {
      out += util::StrFormat("%d\t%d\n", u, v);
    }
    DGNN_RETURN_IF_ERROR(WriteFile(dir + "/social.tsv", out));
  }
  {
    std::string out;
    for (const auto& [i, r] : ds.item_relations) {
      out += util::StrFormat("%d\t%d\n", i, r);
    }
    DGNN_RETURN_IF_ERROR(WriteFile(dir + "/item_relations.tsv", out));
  }
  {
    std::string out;
    for (const auto& negs : ds.eval_negatives) {
      for (size_t i = 0; i < negs.size(); ++i) {
        if (i > 0) out += '\t';
        out += std::to_string(negs[i]);
      }
      out += '\n';
    }
    DGNN_RETURN_IF_ERROR(WriteFile(dir + "/eval_negatives.tsv", out));
  }
  return Status::Ok();
}

StatusOr<Dataset> LoadDataset(const std::string& dir) {
  DGNN_FAILPOINT("data.load_dataset");
  Dataset ds;
  {
    auto content = ReadFile(dir + "/meta.tsv");
    if (!content.ok()) return content.status();
    auto fields = Split(std::string(util::Trim(content.value())), '\t');
    if (fields.size() != 4) {
      return Status::InvalidArgument("bad meta.tsv in " + dir);
    }
    ds.name = fields[0];
    auto u = ParseInt(fields[1]);
    auto i = ParseInt(fields[2]);
    auto r = ParseInt(fields[3]);
    if (!u.ok()) return u.status();
    if (!i.ok()) return i.status();
    if (!r.ok()) return r.status();
    if (u.value() < 0 || i.value() < 0 || r.value() < 0) {
      return Status::InvalidArgument("meta.tsv in " + dir +
                                     ": negative entity count");
    }
    ds.num_users = static_cast<int32_t>(u.value());
    ds.num_items = static_cast<int32_t>(i.value());
    ds.num_relations = static_cast<int32_t>(r.value());
  }
  auto load_interactions = [&](const std::string& file,
                               std::vector<Interaction>* out) -> Status {
    auto content = ReadFile(dir + "/" + file);
    if (!content.ok()) return content.status();
    return ForEachRow(
        content.value(), 3,
        [&](const std::vector<std::string>& f, int64_t row) -> Status {
          auto u = ParseId(file, row, "user", f[0], ds.num_users);
          if (!u.ok()) return u.status();
          auto i = ParseId(file, row, "item", f[1], ds.num_items);
          if (!i.ok()) return i.status();
          auto t = ParseInt(f[2]);
          if (!t.ok()) return t.status();
          out->push_back(Interaction{u.value(), i.value(),
                                     static_cast<int32_t>(t.value())});
          return Status::Ok();
        });
  };
  DGNN_RETURN_IF_ERROR(load_interactions("train.tsv", &ds.train));
  DGNN_RETURN_IF_ERROR(load_interactions("test.tsv", &ds.test));
  {
    auto content = ReadFile(dir + "/social.tsv");
    if (!content.ok()) return content.status();
    DGNN_RETURN_IF_ERROR(ForEachRow(
        content.value(), 2,
        [&](const std::vector<std::string>& f, int64_t row) -> Status {
          auto u = ParseId("social.tsv", row, "user", f[0], ds.num_users);
          if (!u.ok()) return u.status();
          auto v = ParseId("social.tsv", row, "user", f[1], ds.num_users);
          if (!v.ok()) return v.status();
          ds.social.emplace_back(u.value(), v.value());
          return Status::Ok();
        }));
  }
  {
    auto content = ReadFile(dir + "/item_relations.tsv");
    if (!content.ok()) return content.status();
    DGNN_RETURN_IF_ERROR(ForEachRow(
        content.value(), 2,
        [&](const std::vector<std::string>& f, int64_t row) -> Status {
          auto i =
              ParseId("item_relations.tsv", row, "item", f[0], ds.num_items);
          if (!i.ok()) return i.status();
          auto r = ParseId("item_relations.tsv", row, "relation", f[1],
                           ds.num_relations);
          if (!r.ok()) return r.status();
          ds.item_relations.emplace_back(i.value(), r.value());
          return Status::Ok();
        }));
  }
  {
    auto content = ReadFile(dir + "/eval_negatives.tsv");
    if (!content.ok()) return content.status();
    DGNN_RETURN_IF_ERROR(ForEachRow(
        content.value(), 1,
        [&](const std::vector<std::string>& f, int64_t row) -> Status {
          std::vector<int32_t> negs;
          negs.reserve(f.size());
          for (const auto& field : f) {
            auto v = ParseId("eval_negatives.tsv", row, "item", field,
                             ds.num_items);
            if (!v.ok()) return v.status();
            negs.push_back(v.value());
          }
          ds.eval_negatives.push_back(std::move(negs));
          return Status::Ok();
        }));
  }
  if (ds.eval_negatives.size() != ds.test.size()) {
    return Status::InvalidArgument(
        "eval_negatives.tsv row count does not match test.tsv");
  }
  return ds;
}

// ---------------------------------------------------------------------------
// DatasetStreamWriter
// ---------------------------------------------------------------------------

Status DatasetStreamWriter::Open(const std::string& dir) {
  DGNN_FAILPOINT("data.save_dataset");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create directory: " + dir);
  }
  dir_ = dir;
  DGNN_RETURN_IF_ERROR(train_.Open(dir + "/train.tsv"));
  DGNN_RETURN_IF_ERROR(test_.Open(dir + "/test.tsv"));
  DGNN_RETURN_IF_ERROR(social_.Open(dir + "/social.tsv"));
  DGNN_RETURN_IF_ERROR(item_relations_.Open(dir + "/item_relations.tsv"));
  DGNN_RETURN_IF_ERROR(eval_negatives_.Open(dir + "/eval_negatives.tsv"));
  return Status::Ok();
}

Status DatasetStreamWriter::AppendTrain(int32_t user, int32_t item,
                                        int32_t time) {
  ++num_train_;
  return train_.Append(util::StrFormat("%d\t%d\t%d\n", user, item, time));
}

Status DatasetStreamWriter::AppendTest(int32_t user, int32_t item,
                                       int32_t time) {
  ++num_test_;
  return test_.Append(util::StrFormat("%d\t%d\t%d\n", user, item, time));
}

Status DatasetStreamWriter::AppendSocial(int32_t u, int32_t v) {
  DGNN_CHECK_LT(u, v) << "social ties must be streamed with u < v";
  ++num_social_;
  return social_.Append(util::StrFormat("%d\t%d\n", u, v));
}

Status DatasetStreamWriter::AppendItemRelation(int32_t item,
                                               int32_t relation) {
  ++num_item_relations_;
  return item_relations_.Append(
      util::StrFormat("%d\t%d\n", item, relation));
}

Status DatasetStreamWriter::AppendEvalNegatives(
    const std::vector<int32_t>& negatives) {
  ++num_eval_rows_;
  std::string row;
  for (size_t i = 0; i < negatives.size(); ++i) {
    if (i > 0) row += '\t';
    row += std::to_string(negatives[i]);
  }
  row += '\n';
  return eval_negatives_.Append(row);
}

int64_t DatasetStreamWriter::total_bytes() const {
  return train_.bytes_written() + test_.bytes_written() +
         social_.bytes_written() + item_relations_.bytes_written() +
         eval_negatives_.bytes_written();
}

Status DatasetStreamWriter::Finish(const std::string& name,
                                   int32_t num_users, int32_t num_items,
                                   int32_t num_relations) {
  if (num_test_ != num_eval_rows_) {
    return Status::FailedPrecondition(util::StrFormat(
        "test rows (%lld) and eval-negative rows (%lld) must match",
        static_cast<long long>(num_test_),
        static_cast<long long>(num_eval_rows_)));
  }
  DGNN_RETURN_IF_ERROR(train_.Close());
  DGNN_RETURN_IF_ERROR(test_.Close());
  DGNN_RETURN_IF_ERROR(social_.Close());
  DGNN_RETURN_IF_ERROR(item_relations_.Close());
  DGNN_RETURN_IF_ERROR(eval_negatives_.Close());
  // meta.tsv last: its presence commits the dataset.
  return WriteFile(dir_ + "/meta.tsv",
                   util::StrFormat("%s\t%d\t%d\t%d\n", name.c_str(),
                                   num_users, num_items, num_relations));
}

}  // namespace dgnn::data
