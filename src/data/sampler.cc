#include "data/sampler.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace dgnn::data {

BprSampler::BprSampler(const Dataset& dataset, uint64_t seed)
    : dataset_(&dataset), rng_(seed) {
  items_by_user_ = dataset.TrainItemsByUser();
  order_.resize(dataset.train.size());
  std::iota(order_.begin(), order_.end(), 0);
}

int32_t BprSampler::SampleNegative(int32_t user) {
  const auto& seen = items_by_user_[static_cast<size_t>(user)];
  const int64_t num_items = dataset_->num_items;
  // Hard error (also in release builds): a user who interacted with every
  // item has no negative to sample, and looping forever — what the old
  // DCHECK-only guard did under NDEBUG — is strictly worse than failing.
  DGNN_CHECK_LT(static_cast<int64_t>(seen.size()), num_items)
      << "user " << user
      << " interacted with every item; cannot sample a negative";
  // Rejection sampling terminates quickly for typical (sparse) users but
  // degenerates as seen/num_items -> 1, so it is bounded: after
  // kMaxRejectionDraws misses fall through to an exact draw over the
  // unseen set.
  constexpr int kMaxRejectionDraws = 64;
  for (int draw = 0; draw < kMaxRejectionDraws; ++draw) {
    int32_t cand = static_cast<int32_t>(rng_.UniformInt(num_items));
    if (!std::binary_search(seen.begin(), seen.end(), cand)) return cand;
  }
  // Exact fallback: pick the k-th smallest unseen item uniformly. `seen`
  // is sorted, so walking it converts the rank k into an item id.
  int64_t k = rng_.UniformInt(num_items - static_cast<int64_t>(seen.size()));
  int32_t cand = static_cast<int32_t>(k);
  for (int32_t s : seen) {
    if (s <= cand) {
      ++cand;
    } else {
      break;
    }
  }
  return cand;
}

std::vector<BprBatch> BprSampler::SampleEpoch(int batch_size) {
  DGNN_CHECK_GT(batch_size, 0);
  rng_.Shuffle(order_);
  std::vector<BprBatch> batches;
  const int64_t n = static_cast<int64_t>(order_.size());
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min<int64_t>(start + batch_size, n);
    BprBatch batch;
    batch.users.reserve(static_cast<size_t>(end - start));
    batch.pos_items.reserve(static_cast<size_t>(end - start));
    batch.neg_items.reserve(static_cast<size_t>(end - start));
    for (int64_t i = start; i < end; ++i) {
      const Interaction& it =
          dataset_->train[static_cast<size_t>(order_[static_cast<size_t>(i)])];
      batch.users.push_back(it.user);
      batch.pos_items.push_back(it.item);
      batch.neg_items.push_back(SampleNegative(it.user));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

SamplerState BprSampler::state() const {
  SamplerState st;
  st.rng = rng_.state();
  st.order = order_;
  return st;
}

void BprSampler::set_state(const SamplerState& state) {
  DGNN_CHECK_EQ(static_cast<int64_t>(state.order.size()),
                static_cast<int64_t>(order_.size()))
      << "sampler state is for a different dataset";
  rng_.set_state(state.rng);
  order_ = state.order;
}

}  // namespace dgnn::data
