#include "quant/quant.h"

#include <cmath>

#include "kernels/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dgnn::quant {
namespace {

// Same fixed grain as the serving catalog scans; quantization is a pure
// per-element map, so the grain only affects scheduling, never bits.
constexpr int64_t kRowGrain = 256;

void QuantizeRowInt8(const float* row, int64_t cols, int8_t* q,
                     float* scale) {
  float maxabs = 0.0f;
  for (int64_t c = 0; c < cols; ++c) {
    const float a = std::fabs(row[c]);
    if (a > maxabs) maxabs = a;
  }
  if (maxabs == 0.0f) {
    *scale = 0.0f;
    for (int64_t c = 0; c < cols; ++c) q[c] = 0;
    return;
  }
  const float s = maxabs / 127.0f;
  const float inv = 127.0f / maxabs;
  *scale = s;
  for (int64_t c = 0; c < cols; ++c) {
    // nearbyint under the default rounding mode = round-to-nearest-even,
    // the same tie rule the fp16 converter uses.
    float v = std::nearbyintf(row[c] * inv);
    if (v > 127.0f) v = 127.0f;
    if (v < -127.0f) v = -127.0f;
    q[c] = static_cast<int8_t>(v);
  }
}

}  // namespace

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kInt8:
      return "int8";
    case Codec::kFp16:
      return "fp16";
  }
  return "?";
}

util::StatusOr<Codec> ParseCodec(const std::string& name) {
  if (name == "int8") return Codec::kInt8;
  if (name == "fp16") return Codec::kFp16;
  return util::Status::InvalidArgument("unknown quantization codec '" +
                                       name + "' (expected int8 or fp16)");
}

int64_t QuantizedMatrix::ResidentBytes() const {
  return static_cast<int64_t>(q8.size()) * sizeof(int8_t) +
         static_cast<int64_t>(scales.size()) * sizeof(float) +
         static_cast<int64_t>(f16.size()) * sizeof(uint16_t);
}

float QuantizedMatrix::Dot(const float* x, int64_t r) const {
  if (codec == Codec::kInt8) {
    return scales[static_cast<size_t>(r)] *
           kernels::DotQ8(x, q8.data() + r * cols, cols);
  }
  return kernels::DotF16(x, f16.data() + r * cols, cols);
}

void QuantizedMatrix::DequantizeRow(int64_t r, float* out) const {
  if (codec == Codec::kInt8) {
    const float s = scales[static_cast<size_t>(r)];
    const int8_t* q = q8.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = s * static_cast<float>(q[c]);
    }
    return;
  }
  const uint16_t* h = f16.data() + r * cols;
  for (int64_t c = 0; c < cols; ++c) out[c] = kernels::Fp16ToFp32(h[c]);
}

QuantizedMatrix Quantize(const float* data, int64_t rows, int64_t cols,
                         Codec codec) {
  DGNN_CHECK_GE(rows, 0);
  DGNN_CHECK_GT(cols, 0);
  QuantizedMatrix out;
  out.codec = codec;
  out.rows = rows;
  out.cols = cols;
  if (codec == Codec::kInt8) {
    out.q8.resize(static_cast<size_t>(rows * cols));
    out.scales.resize(static_cast<size_t>(rows));
    util::ParallelFor(0, rows, kRowGrain, [&](int64_t b, int64_t e) {
      for (int64_t r = b; r < e; ++r) {
        QuantizeRowInt8(data + r * cols, cols, out.q8.data() + r * cols,
                        &out.scales[static_cast<size_t>(r)]);
      }
    });
    return out;
  }
  out.f16.resize(static_cast<size_t>(rows * cols));
  util::ParallelFor(0, rows, kRowGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b * cols; i < e * cols; ++i) {
      out.f16[static_cast<size_t>(i)] = kernels::Fp32ToFp16(data[i]);
    }
  });
  return out;
}

void Dequantize(const QuantizedMatrix& q, float* out) {
  util::ParallelFor(0, q.rows, kRowGrain, [&](int64_t b, int64_t e) {
    for (int64_t r = b; r < e; ++r) q.DequantizeRow(r, out + r * q.cols);
  });
}

}  // namespace dgnn::quant
