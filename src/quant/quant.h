// Quantized embedding storage for serving snapshots — ggml-style per-row
// scaling so million-row matrices fit in RAM without giving up ranking
// quality:
//
//  * int8: each row stores round(x / scale) clamped to [-127, 127] with
//    scale = max|x| / 127 (scale 0 for an all-zero row). 4x smaller than
//    fp32 plus one float per row; worst-case per-element error is
//    scale / 2.
//  * fp16: IEEE binary16 with round-to-nearest-even, converted by the
//    software reference in kernels/kernels.h (bit-identical everywhere;
//    hardware converters only accelerate the dot kernels). 2x smaller,
//    ~3 decimal digits.
//
// Quantization and dequantization are pure per-element maps — no
// cross-element accumulation — so outputs are bit-identical for any
// thread count and any ISA. Scoring goes through the kernels dispatch
// table (DotQ8 / DotF16): deterministic mode is the serial scalar
// reference, fast mode gets SIMD widening + FMA.

#ifndef DGNN_QUANT_QUANT_H_
#define DGNN_QUANT_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dgnn::quant {

// On-disk codec ids (stable: serialized inside snapshot sections).
enum class Codec : uint8_t {
  kInt8 = 1,
  kFp16 = 2,
};

const char* CodecName(Codec codec);
// Accepts "int8" or "fp16".
util::StatusOr<Codec> ParseCodec(const std::string& name);

// A quantized row-major matrix. Exactly one of (q8 + scales) or f16 is
// populated, per `codec`.
struct QuantizedMatrix {
  Codec codec = Codec::kInt8;
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> q8;      // int8: rows * cols
  std::vector<float> scales;   // int8: rows (per-row dequant scale)
  std::vector<uint16_t> f16;   // fp16: rows * cols

  bool empty() const { return rows == 0 && cols == 0; }
  int64_t ResidentBytes() const;

  // dot(x, dequantized row r) via the dispatched quantized kernels;
  // x has length cols.
  float Dot(const float* x, int64_t r) const;
  // Writes the dequantized row r into out[0..cols).
  void DequantizeRow(int64_t r, float* out) const;
};

// Quantizes a row-major rows x cols matrix. Parallel over rows on the
// shared pool; bit-identical for any thread count.
QuantizedMatrix Quantize(const float* data, int64_t rows, int64_t cols,
                         Codec codec);

// Dequantizes the whole matrix into out[0..rows*cols) (row-major).
void Dequantize(const QuantizedMatrix& q, float* out);

}  // namespace dgnn::quant

#endif  // DGNN_QUANT_QUANT_H_
