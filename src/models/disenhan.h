// DisenHAN (Wang et al., CIKM'20): disentangled heterogeneous graph
// attention. Embeddings are projected into K facet subspaces per node
// type; within each facet, information aggregates from each relation
// (meta-relation) separately, and a relation-level attention decides how
// much each relation contributes to that facet — so different facets
// specialize to different relation semantics. Single routing pass
// (the original iterates a few times; see DESIGN.md fidelity notes).

#ifndef DGNN_MODELS_DISENHAN_H_
#define DGNN_MODELS_DISENHAN_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct DisenHanConfig {
  int64_t embedding_dim = 16;  // total, split across facets
  int num_facets = 4;
  uint64_t seed = 42;
};

class DisenHan : public RecModel {
 public:
  DisenHan(const graph::HeteroGraph& graph, DisenHanConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  std::string name_ = "DisenHAN";
  DisenHanConfig config_;
  bool has_relations_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  ag::Parameter* rel_emb_;
  // Facet projections, indexed [facet]: per node type (d x d/K).
  std::vector<ag::Parameter*> user_proj_, item_proj_, rel_proj_;
  // Relation-level attention per facet: shared transform + query vector.
  std::vector<ag::Parameter*> att_w_;  // (d/K x d/K)
  std::vector<ag::Parameter*> att_q_;  // (1 x d/K)
  graph::CsrMatrix social_norm_, social_norm_t_;
  graph::CsrMatrix ui_norm_, ui_norm_t_;   // user <- item mean
  graph::CsrMatrix iu_norm_, iu_norm_t_;   // item <- user mean
  graph::CsrMatrix ir_norm_, ir_norm_t_;   // item <- relation mean
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_DISENHAN_H_
