#include "models/hgt.h"

#include <cmath>

#include "util/strings.h"

namespace dgnn::models {

Hgt::Hgt(const graph::HeteroGraph& graph, HgtConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()),
      num_rels_(graph.num_relations()) {
  DGNN_CHECK_GT(config.num_heads, 0);
  DGNN_CHECK_EQ(config.embedding_dim % config.num_heads, 0)
      << "embedding_dim must divide evenly across heads";
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  const int64_t dh = d / config.num_heads;
  user_emb_ = params_.CreateXavier("user_emb", num_users_, d, rng);
  item_emb_ = params_.CreateXavier("item_emb", num_items_, d, rng);
  rel_emb_ = num_rels_ > 0
                 ? params_.CreateXavier("rel_emb", num_rels_, d, rng)
                 : nullptr;
  layers_.resize(static_cast<size_t>(config.num_layers));
  for (int l = 0; l < config.num_layers; ++l) {
    LayerParams& lp = layers_[static_cast<size_t>(l)];
    lp.q.resize(kNumNodeTypes);
    lp.k.resize(kNumNodeTypes);
    lp.v.resize(kNumNodeTypes);
    for (int t = 0; t < kNumNodeTypes; ++t) {
      for (int h = 0; h < config.num_heads; ++h) {
        lp.q[static_cast<size_t>(t)].push_back(params_.CreateXavier(
            util::StrFormat("l%d.q_%d_h%d", l, t, h), d, dh, rng));
        lp.k[static_cast<size_t>(t)].push_back(params_.CreateXavier(
            util::StrFormat("l%d.k_%d_h%d", l, t, h), d, dh, rng));
        lp.v[static_cast<size_t>(t)].push_back(params_.CreateXavier(
            util::StrFormat("l%d.v_%d_h%d", l, t, h), d, dh, rng));
      }
      lp.out.push_back(params_.CreateXavier(
          util::StrFormat("l%d.out_%d", l, t), d, d, rng));
    }
    lp.w_att.resize(kNumEdgeTypes);
    lp.w_msg.resize(kNumEdgeTypes);
    for (int e = 0; e < kNumEdgeTypes; ++e) {
      for (int h = 0; h < config.num_heads; ++h) {
        lp.w_att[static_cast<size_t>(e)].push_back(params_.CreateXavier(
            util::StrFormat("l%d.watt_%d_h%d", l, e, h), dh, dh, rng));
        lp.w_msg[static_cast<size_t>(e)].push_back(params_.CreateXavier(
            util::StrFormat("l%d.wmsg_%d_h%d", l, e, h), dh, dh, rng));
      }
    }
  }
  edges_.resize(kNumEdgeTypes);
  edges_[kItemToUser] = graph.ItemToUserEdges();
  edges_[kUserToItem] = graph.UserToItemEdges();
  edges_[kUserToUser] = graph.UserToUserEdges();
  edges_[kRelToItem] = graph.RelToItemEdges();
  edges_[kItemToRel] = graph.ItemToRelEdges();
}

ForwardResult Hgt::Forward(ag::Tape& tape, bool /*training*/) {
  const int heads = config_.num_heads;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(
                                config_.embedding_dim / heads));
  std::vector<ag::VarId> h(kNumNodeTypes, -1);
  h[kUser] = tape.Param(user_emb_);
  h[kItem] = tape.Param(item_emb_);
  if (rel_emb_ != nullptr) h[kRel] = tape.Param(rel_emb_);

  const int src_type_of[] = {kItem, kUser, kUser, kRel, kItem};
  const int dst_type_of[] = {kUser, kItem, kUser, kItem, kRel};
  const int64_t count_of[] = {num_users_, num_items_,
                              static_cast<int64_t>(num_rels_)};

  for (int l = 0; l < config_.num_layers; ++l) {
    const LayerParams& lp = layers_[static_cast<size_t>(l)];
    // Per node type, per head projections.
    std::vector<std::vector<ag::VarId>> q(kNumNodeTypes), k(kNumNodeTypes),
        v(kNumNodeTypes);
    for (int t = 0; t < kNumNodeTypes; ++t) {
      if (h[static_cast<size_t>(t)] < 0) continue;
      for (int head = 0; head < heads; ++head) {
        q[static_cast<size_t>(t)].push_back(tape.MatMul(
            h[static_cast<size_t>(t)],
            tape.Param(lp.q[static_cast<size_t>(t)][static_cast<size_t>(
                head)])));
        k[static_cast<size_t>(t)].push_back(tape.MatMul(
            h[static_cast<size_t>(t)],
            tape.Param(lp.k[static_cast<size_t>(t)][static_cast<size_t>(
                head)])));
        v[static_cast<size_t>(t)].push_back(tape.MatMul(
            h[static_cast<size_t>(t)],
            tape.Param(lp.v[static_cast<size_t>(t)][static_cast<size_t>(
                head)])));
      }
    }

    // Per destination type, per head: edge scores + messages collected
    // across all incoming edge types, softmaxed jointly per target.
    std::vector<std::vector<std::vector<ag::VarId>>> score_parts(
        kNumNodeTypes,
        std::vector<std::vector<ag::VarId>>(static_cast<size_t>(heads)));
    std::vector<std::vector<std::vector<ag::VarId>>> msg_parts(
        kNumNodeTypes,
        std::vector<std::vector<ag::VarId>>(static_cast<size_t>(heads)));
    std::vector<std::vector<int32_t>> dst_parts(kNumNodeTypes);
    for (int e = 0; e < kNumEdgeTypes; ++e) {
      const graph::EdgeList& el = edges_[static_cast<size_t>(e)];
      if (el.size() == 0) continue;
      const int st = src_type_of[e];
      const int dt = dst_type_of[e];
      if (h[static_cast<size_t>(st)] < 0 || h[static_cast<size_t>(dt)] < 0) {
        continue;
      }
      for (int head = 0; head < heads; ++head) {
        ag::VarId k_att = tape.MatMul(
            k[static_cast<size_t>(st)][static_cast<size_t>(head)],
            tape.Param(
                lp.w_att[static_cast<size_t>(e)][static_cast<size_t>(
                    head)]));
        ag::VarId msg_all = tape.MatMul(
            v[static_cast<size_t>(st)][static_cast<size_t>(head)],
            tape.Param(
                lp.w_msg[static_cast<size_t>(e)][static_cast<size_t>(
                    head)]));
        ag::VarId k_e = tape.GatherRows(k_att, el.src);
        ag::VarId q_e = tape.GatherRows(
            q[static_cast<size_t>(dt)][static_cast<size_t>(head)], el.dst);
        score_parts[static_cast<size_t>(dt)][static_cast<size_t>(head)]
            .push_back(
                tape.ScalarMul(tape.RowDot(k_e, q_e), inv_sqrt_dh));
        msg_parts[static_cast<size_t>(dt)][static_cast<size_t>(head)]
            .push_back(tape.GatherRows(msg_all, el.src));
      }
      auto& dst_ids = dst_parts[static_cast<size_t>(dt)];
      dst_ids.insert(dst_ids.end(), el.dst.begin(), el.dst.end());
    }

    for (int t = 0; t < kNumNodeTypes; ++t) {
      if (h[static_cast<size_t>(t)] < 0 ||
          score_parts[static_cast<size_t>(t)][0].empty()) {
        continue;
      }
      std::vector<ag::VarId> head_outputs;
      head_outputs.reserve(static_cast<size_t>(heads));
      for (int head = 0; head < heads; ++head) {
        ag::VarId scores = tape.ConcatRows(
            score_parts[static_cast<size_t>(t)][static_cast<size_t>(head)]);
        ag::VarId msgs = tape.ConcatRows(
            msg_parts[static_cast<size_t>(t)][static_cast<size_t>(head)]);
        ag::VarId attn = tape.SegmentSoftmax(
            scores, dst_parts[static_cast<size_t>(t)], count_of[t]);
        head_outputs.push_back(
            tape.SegmentSum(tape.RowScale(msgs, attn),
                            dst_parts[static_cast<size_t>(t)],
                            count_of[t]));
      }
      ag::VarId agg = tape.ConcatCols(head_outputs);
      ag::VarId projected = tape.MatMul(
          tape.LeakyRelu(agg, 0.2f),
          tape.Param(lp.out[static_cast<size_t>(t)]));
      h[static_cast<size_t>(t)] =
          tape.Add(projected, h[static_cast<size_t>(t)]);
    }
  }

  ForwardResult out;
  out.users = h[kUser];
  out.items = h[kItem];
  return out;
}

}  // namespace dgnn::models
