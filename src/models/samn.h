// SAMN (Chen et al., WSDM'19): social attentional memory network.
// Two attention stages over each user's friends:
//   1. aspect stage: the user-friend relation vector (e_u .* e_f) attends
//      over a shared memory matrix M (K slices), producing a
//      relation-specific friend vector f~ = sum_k a_k (e_f .* M_k);
//   2. friend stage: additive attention over friends, aggregated into a
//      social complement added to the user embedding.
// Items keep free embeddings; scoring is the dot product as in the
// reproduced paper's ranking protocol.

#ifndef DGNN_MODELS_SAMN_H_
#define DGNN_MODELS_SAMN_H_

#include <string>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct SamnConfig {
  int64_t embedding_dim = 16;
  int num_memory_slices = 8;
  uint64_t seed = 42;
};

class Samn : public RecModel {
 public:
  Samn(const graph::HeteroGraph& graph, SamnConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  std::string name_ = "SAMN";
  SamnConfig config_;
  int32_t num_users_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  ag::Parameter* key_;       // K x d attention keys
  ag::Parameter* memory_;    // K x d memory slices
  ag::Parameter* att_w_;     // d x d friend-attention projection
  ag::Parameter* att_v_;     // 1 x d friend-attention vector
  graph::EdgeList social_edges_;  // friend -> user
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_SAMN_H_
