#include "models/samn.h"

#include "models/common.h"
#include "util/strings.h"

namespace dgnn::models {

Samn::Samn(const graph::HeteroGraph& graph, SamnConfig config)
    : config_(config), num_users_(graph.num_users()) {
  util::Rng rng(config.seed);
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(),
                                   config.embedding_dim, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(),
                                   config.embedding_dim, rng);
  key_ = params_.CreateXavier("key", config.num_memory_slices,
                              config.embedding_dim, rng);
  memory_ = params_.CreateXavier("memory", config.num_memory_slices,
                                 config.embedding_dim, rng);
  att_w_ = params_.CreateXavier("att_w", config.embedding_dim,
                                config.embedding_dim, rng);
  att_v_ = params_.CreateXavier("att_v", 1, config.embedding_dim, rng);
  social_edges_ = graph.UserToUserEdges();
}

ForwardResult Samn::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h_user = tape.Param(user_emb_);
  ForwardResult out;
  out.items = tape.Param(item_emb_);

  if (social_edges_.size() == 0) {
    out.users = h_user;
    return out;
  }

  // Aspect (memory) stage.
  EdgeFeatures ef = GatherEdgeFeatures(tape, h_user, h_user, social_edges_);
  ag::VarId joint = tape.Mul(ef.src, ef.dst);  // relation vector, E x d
  // Attention over memory slices: (E x d) @ (K x d)^T -> E x K.
  ag::VarId slice_attn =
      tape.RowSoftmax(tape.MatMul(joint, tape.Param(key_), false, true));
  ag::VarId memory = tape.Param(memory_);
  std::vector<ag::VarId> friend_vec_terms;
  friend_vec_terms.reserve(static_cast<size_t>(config_.num_memory_slices));
  for (int k = 0; k < config_.num_memory_slices; ++k) {
    // e_f .* M_k, weighted by the k-th slice attention.
    ag::VarId modulated =
        tape.MulRowBroadcast(ef.src, tape.SliceRows(memory, k, 1));
    friend_vec_terms.push_back(
        tape.RowScale(modulated, tape.Col(slice_attn, k)));
  }
  ag::VarId friend_vec = tape.AddN(friend_vec_terms);  // E x d

  // Friend-level attention stage.
  ag::VarId proj = tape.MatMul(friend_vec, tape.Param(att_w_));
  ag::VarId scores = AdditiveAttentionScores(tape, proj, ef.dst, att_v_);
  ag::VarId social = EdgeSoftmaxAggregate(tape, friend_vec, scores,
                                          social_edges_.dst, num_users_);
  out.users = tape.Add(h_user, social);
  return out;
}

}  // namespace dgnn::models
