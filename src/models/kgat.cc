#include "models/kgat.h"

#include "models/common.h"
#include "util/strings.h"

namespace dgnn::models {

Kgat::Kgat(const graph::HeteroGraph& graph, KgatConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()),
      num_nodes_(static_cast<int64_t>(graph.num_users()) +
                 graph.num_items() + graph.num_relations()) {
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  node_emb_ = params_.CreateXavier("node_emb", num_nodes_, d, rng);
  rel_type_emb_ = params_.CreateXavier("rel_type_emb", 4, d, rng);
  for (int l = 0; l < config.num_layers; ++l) {
    w_.push_back(params_.CreateXavier(util::StrFormat("w_%d", l), d, d, rng));
    w1_.push_back(
        params_.CreateXavier(util::StrFormat("w1_%d", l), d, d, rng));
    w2_.push_back(
        params_.CreateXavier(util::StrFormat("w2_%d", l), d, d, rng));
  }

  const int32_t item_base = graph.num_users();
  const int32_t rel_base = graph.num_users() + graph.num_items();
  auto append = [&](const graph::EdgeList& edges, int32_t src_off,
                    int32_t dst_off, int32_t type) {
    for (int64_t e = 0; e < edges.size(); ++e) {
      edge_src_.push_back(edges.src[static_cast<size_t>(e)] + src_off);
      edge_dst_.push_back(edges.dst[static_cast<size_t>(e)] + dst_off);
      edge_type_.push_back(type);
    }
  };
  append(graph.ItemToUserEdges(), item_base, 0, 0);   // interact
  append(graph.UserToItemEdges(), 0, item_base, 1);   // interacted-by
  append(graph.UserToUserEdges(), 0, 0, 2);           // social tie
  append(graph.RelToItemEdges(), rel_base, item_base, 3);  // category-of
  append(graph.ItemToRelEdges(), item_base, rel_base, 3);  // has-category
}

ForwardResult Kgat::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h = tape.Param(node_emb_);
  std::vector<ag::VarId> layers = {h};
  for (int l = 0; l < config_.num_layers; ++l) {
    ag::VarId wl = tape.Param(w_[static_cast<size_t>(l)]);
    ag::VarId projected = tape.MatMul(h, wl);
    ag::VarId msg = tape.GatherRows(projected, edge_src_);
    ag::VarId dst_proj = tape.GatherRows(projected, edge_dst_);
    ag::VarId e_r = tape.GatherRows(tape.Param(rel_type_emb_), edge_type_);
    // pi(e) = <W h_src, tanh(W h_dst + e_r)>
    ag::VarId scores = tape.RowDot(msg, tape.Tanh(tape.Add(dst_proj, e_r)));
    ag::VarId agg =
        EdgeSoftmaxAggregate(tape, msg, scores, edge_dst_, num_nodes_);
    // Bi-interaction aggregator.
    ag::VarId sum_path = tape.LeakyRelu(
        tape.MatMul(tape.Add(h, agg), tape.Param(w1_[static_cast<size_t>(l)])),
        config_.leaky_slope);
    ag::VarId prod_path = tape.LeakyRelu(
        tape.MatMul(tape.Mul(h, agg), tape.Param(w2_[static_cast<size_t>(l)])),
        config_.leaky_slope);
    h = tape.Add(sum_path, prod_path);
    h = tape.RowL2Normalize(h);
    layers.push_back(h);
  }
  ag::VarId all = tape.ConcatCols(layers);
  ForwardResult out;
  out.users = tape.SliceRows(all, 0, num_users_);
  out.items = tape.SliceRows(all, num_users_, num_items_);
  return out;
}

}  // namespace dgnn::models
