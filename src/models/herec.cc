#include "models/herec.h"

#include <cmath>

#include "util/strings.h"

namespace dgnn::models {
namespace {

float SigmoidF(float z) {
  if (z >= 0.0f) return 1.0f / (1.0f + std::exp(-z));
  const float e = std::exp(z);
  return e / (1.0f + e);
}

// Weighted next-hop choice from a CSR row; -1 for dangling nodes.
int32_t Step(const graph::CsrMatrix& adj, int32_t node, util::Rng& rng) {
  const int64_t begin = adj.indptr()[static_cast<size_t>(node)];
  const int64_t end = adj.indptr()[static_cast<size_t>(node) + 1];
  if (begin == end) return -1;
  float total = 0.0f;
  for (int64_t i = begin; i < end; ++i) {
    total += adj.values()[static_cast<size_t>(i)];
  }
  float x = static_cast<float>(rng.UniformDouble()) * total;
  for (int64_t i = begin; i < end; ++i) {
    x -= adj.values()[static_cast<size_t>(i)];
    if (x < 0.0f) return adj.indices()[static_cast<size_t>(i)];
  }
  return adj.indices()[static_cast<size_t>(end - 1)];
}

}  // namespace

ag::Tensor TrainWalkEmbeddings(const graph::CsrMatrix& adj,
                               const HerecConfig& config, uint64_t seed) {
  const int64_t n = adj.rows();
  const int64_t d = config.embedding_dim;
  util::Rng rng(seed);
  ag::Tensor emb = ag::Tensor::GaussianInit(n, d, 0.1f, rng);
  ag::Tensor ctx = ag::Tensor::GaussianInit(n, d, 0.1f, rng);

  // Generate walks and collect skip-gram (center, context) pairs.
  std::vector<std::pair<int32_t, int32_t>> pairs;
  std::vector<int32_t> walk;
  for (int w = 0; w < config.walks_per_node; ++w) {
    for (int32_t start = 0; start < n; ++start) {
      walk.clear();
      int32_t cur = start;
      for (int step = 0; step < config.walk_length && cur >= 0; ++step) {
        walk.push_back(cur);
        cur = Step(adj, cur, rng);
      }
      for (size_t i = 0; i < walk.size(); ++i) {
        for (int off = 1; off <= config.window; ++off) {
          if (i + static_cast<size_t>(off) < walk.size()) {
            pairs.emplace_back(walk[i], walk[i + static_cast<size_t>(off)]);
          }
        }
      }
    }
  }

  // SGNS updates.
  const float lr = config.sgns_learning_rate;
  std::vector<float> grad_center(static_cast<size_t>(d));
  for (int epoch = 0; epoch < config.sgns_epochs; ++epoch) {
    rng.Shuffle(pairs);
    for (const auto& [center, context] : pairs) {
      float* ec = emb.row(center);
      std::fill(grad_center.begin(), grad_center.end(), 0.0f);
      // Positive pair plus sampled negatives.
      for (int s = 0; s <= config.negatives; ++s) {
        const bool positive = s == 0;
        const int32_t target =
            positive ? context : static_cast<int32_t>(rng.UniformInt(n));
        float* ct = ctx.row(target);
        float dot = 0.0f;
        for (int64_t c = 0; c < d; ++c) dot += ec[c] * ct[c];
        const float label = positive ? 1.0f : 0.0f;
        const float coeff = lr * (label - SigmoidF(dot));
        for (int64_t c = 0; c < d; ++c) {
          grad_center[static_cast<size_t>(c)] += coeff * ct[c];
          ct[c] += coeff * ec[c];
        }
      }
      for (int64_t c = 0; c < d; ++c) {
        ec[c] += grad_center[static_cast<size_t>(c)];
      }
    }
  }
  return emb;
}

Herec::Herec(const graph::HeteroGraph& graph, HerecConfig config)
    : config_(config) {
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(), d, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(), d, rng);

  // Stage 1: frozen meta-path walk embeddings.
  std::vector<graph::CsrMatrix> user_adjs;
  user_adjs.push_back(graph::HeteroGraph::RowNormalized(graph.social()));
  user_adjs.push_back(graph.MetaPathUIU(config.metapath_cap));
  std::vector<graph::CsrMatrix> item_adjs;
  item_adjs.push_back(graph.MetaPathIUI(config.metapath_cap));
  if (graph.num_relations() > 0) {
    item_adjs.push_back(graph.MetaPathIRI(config.metapath_cap));
  }
  uint64_t walk_seed = config.seed ^ 0x5151ULL;
  for (size_t p = 0; p < user_adjs.size(); ++p) {
    user_walk_embs_.push_back(
        TrainWalkEmbeddings(user_adjs[p], config, walk_seed++));
    user_fuse_w_.push_back(params_.CreateXavier(
        util::StrFormat("user_fuse_%zu", p), d, d, rng));
  }
  for (size_t p = 0; p < item_adjs.size(); ++p) {
    item_walk_embs_.push_back(
        TrainWalkEmbeddings(item_adjs[p], config, walk_seed++));
    item_fuse_w_.push_back(params_.CreateXavier(
        util::StrFormat("item_fuse_%zu", p), d, d, rng));
  }
}

ForwardResult Herec::Forward(ag::Tape& tape, bool /*training*/) {
  // Stage 2: personalized fusion of frozen walk embeddings into MF.
  std::vector<ag::VarId> user_terms = {tape.Param(user_emb_)};
  for (size_t p = 0; p < user_walk_embs_.size(); ++p) {
    user_terms.push_back(tape.Tanh(
        tape.MatMul(tape.Constant(user_walk_embs_[p]),
                    tape.Param(user_fuse_w_[p]))));
  }
  std::vector<ag::VarId> item_terms = {tape.Param(item_emb_)};
  for (size_t p = 0; p < item_walk_embs_.size(); ++p) {
    item_terms.push_back(tape.Tanh(
        tape.MatMul(tape.Constant(item_walk_embs_[p]),
                    tape.Param(item_fuse_w_[p]))));
  }
  ForwardResult out;
  out.users = tape.AddN(user_terms);
  out.items = tape.AddN(item_terms);
  return out;
}

}  // namespace dgnn::models
