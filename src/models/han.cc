#include "models/han.h"

#include "models/common.h"
#include "util/strings.h"

namespace dgnn::models {

Han::Han(const graph::HeteroGraph& graph, HanConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()) {
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  user_emb_ = params_.CreateXavier("user_emb", num_users_, d, rng);
  item_emb_ = params_.CreateXavier("item_emb", num_items_, d, rng);

  auto make_path = [&](const graph::CsrMatrix& adj, const std::string& nm) {
    PathModules p;
    p.edges = graph::HeteroGraph::CsrToEdges(adj);
    p.w = params_.CreateXavier(nm + "_w", d, d, rng);
    p.att_v = params_.CreateXavier(nm + "_v", 1, d, rng);
    return p;
  };
  user_paths_.push_back(make_path(graph.social(), "uu"));
  user_paths_.push_back(make_path(graph.MetaPathUIU(config.metapath_cap),
                                  "uiu"));
  item_paths_.push_back(make_path(graph.MetaPathIUI(config.metapath_cap),
                                  "iui"));
  if (graph.num_relations() > 0) {
    item_paths_.push_back(make_path(graph.MetaPathIRI(config.metapath_cap),
                                    "iri"));
  }
  sem_w_user_ = params_.CreateXavier("sem_w_user", d, d, rng);
  sem_q_user_ = params_.CreateXavier("sem_q_user", 1, d, rng);
  sem_w_item_ = params_.CreateXavier("sem_w_item", d, d, rng);
  sem_q_item_ = params_.CreateXavier("sem_q_item", 1, d, rng);
}

ag::VarId Han::PathEmbedding(ag::Tape& tape, ag::VarId h,
                             const PathModules& path,
                             int64_t num_nodes) const {
  ag::VarId projected = tape.MatMul(h, tape.Param(path.w));
  if (path.edges.size() == 0) return projected;
  ag::VarId src = tape.GatherRows(projected, path.edges.src);
  ag::VarId dst = tape.GatherRows(projected, path.edges.dst);
  ag::VarId scores = AdditiveAttentionScores(tape, src, dst, path.att_v);
  ag::VarId agg =
      EdgeSoftmaxAggregate(tape, src, scores, path.edges.dst, num_nodes);
  // Nodes with no meta-path neighbor keep their projected embedding.
  return tape.LeakyRelu(tape.Add(projected, agg), 0.2f);
}

ag::VarId Han::SemanticCombine(ag::Tape& tape,
                               const std::vector<ag::VarId>& paths,
                               ag::Parameter* w, ag::Parameter* q) const {
  DGNN_CHECK(!paths.empty());
  if (paths.size() == 1) return paths[0];
  // Path importance: mean over nodes of <tanh(h W), q>.
  std::vector<ag::VarId> scores;
  scores.reserve(paths.size());
  for (ag::VarId p : paths) {
    ag::VarId keyed = tape.Tanh(tape.MatMul(p, tape.Param(w)));
    scores.push_back(tape.MeanAll(
        tape.MatMul(keyed, tape.Param(q), false, true)));
  }
  // Softmax over the (few) meta-paths.
  ag::VarId weights = tape.RowSoftmax(tape.ConcatCols(scores));
  std::vector<ag::VarId> weighted;
  weighted.reserve(paths.size());
  for (size_t p = 0; p < paths.size(); ++p) {
    weighted.push_back(tape.MulScalarVar(
        paths[p], tape.Col(weights, static_cast<int64_t>(p))));
  }
  return tape.AddN(weighted);
}

ForwardResult Han::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h_user = tape.Param(user_emb_);
  ag::VarId h_item = tape.Param(item_emb_);

  std::vector<ag::VarId> user_path_embs;
  for (const auto& p : user_paths_) {
    user_path_embs.push_back(PathEmbedding(tape, h_user, p, num_users_));
  }
  std::vector<ag::VarId> item_path_embs;
  for (const auto& p : item_paths_) {
    item_path_embs.push_back(PathEmbedding(tape, h_item, p, num_items_));
  }

  ForwardResult out;
  out.users = SemanticCombine(tape, user_path_embs, sem_w_user_, sem_q_user_);
  out.items = SemanticCombine(tape, item_path_embs, sem_w_item_, sem_q_item_);
  return out;
}

}  // namespace dgnn::models
