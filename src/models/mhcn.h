// MHCN (Yu et al., WWW'21): multi-channel hypergraph convolutional network
// for social recommendation. Three motif-induced hypergraph channels over
// users —
//   social channel:   triangles in the social graph      (S*S) .* S
//   joint channel:    friends with co-interactions       (Y*Y^T) .* S
//   purchase channel: co-interaction neighborhoods       top-k of Y*Y^T
// — each with self-gated inputs and LightGCN-style convolutions, fused by
// channel attention. The hierarchical mutual-information maximization is
// simplified to a per-channel node-vs-graph-readout discrimination
// auxiliary loss (see DESIGN.md).

#ifndef DGNN_MODELS_MHCN_H_
#define DGNN_MODELS_MHCN_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct MhcnConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  float ssl_weight = 0.1f;
  int64_t purchase_cap = 16;
  uint64_t seed = 42;
};

class Mhcn : public RecModel {
 public:
  Mhcn(const graph::HeteroGraph& graph, MhcnConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

  // The SSL row-shuffle stream advances every training forward; resume
  // must restore it or post-resume corruption permutations diverge.
  std::string SaveStochasticState() const override {
    std::string out;
    util::AppendRngState(shuffle_rng_.state(), &out);
    return out;
  }
  util::Status RestoreStochasticState(const std::string& blob) override {
    util::RngState st;
    size_t pos = 0;
    DGNN_RETURN_IF_ERROR(util::ParseRngState(blob, &pos, &st));
    if (pos != blob.size()) {
      return util::Status::InvalidArgument(
          "trailing bytes in MHCN stochastic state");
    }
    shuffle_rng_.set_state(st);
    return util::Status::Ok();
  }

 private:
  std::string name_ = "MHCN";
  MhcnConfig config_;
  int32_t num_users_;
  ag::ParamStore params_;
  util::Rng shuffle_rng_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  std::vector<ag::Parameter*> gate_w_;  // self-gating per channel (d x d)
  ag::Parameter* att_q_;                // channel attention query (1 x d)
  std::vector<graph::CsrMatrix> channels_, channels_t_;
  graph::CsrMatrix ui_norm_, ui_norm_t_;
  graph::CsrMatrix iu_norm_, iu_norm_t_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_MHCN_H_
