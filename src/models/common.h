// Building blocks shared by the baseline implementations: embedding-table
// creation and the edge-level attention primitive (gather endpoint
// features -> score -> per-target softmax -> weighted aggregation) that
// GraphRec, KGAT, HGT, HAN, DGRec and DisenHAN all instantiate.

#ifndef DGNN_MODELS_COMMON_H_
#define DGNN_MODELS_COMMON_H_

#include <vector>

#include "ag/tape.h"
#include "graph/hetero_graph.h"

namespace dgnn::models {

// Per-edge endpoint features gathered from node embedding matrices.
struct EdgeFeatures {
  ag::VarId src = -1;  // (E x d) rows of the source nodes
  ag::VarId dst = -1;  // (E x d) rows of the destination nodes
};

EdgeFeatures GatherEdgeFeatures(ag::Tape& tape, ag::VarId h_src,
                                ag::VarId h_dst,
                                const graph::EdgeList& edges);

// Softmax-normalizes `scores` (E x 1) over each destination's incoming
// edges, then sums `messages` (E x d) into destinations (num_dst x d).
ag::VarId EdgeSoftmaxAggregate(ag::Tape& tape, ag::VarId messages,
                               ag::VarId scores,
                               const std::vector<int32_t>& dst,
                               int64_t num_dst);

// GAT-style additive attention score per edge:
//   score_e = <tanh(src_feat W_s + dst_feat W_d), v>
// where the caller supplies already-projected per-edge features.
ag::VarId AdditiveAttentionScores(ag::Tape& tape, ag::VarId src_feat,
                                  ag::VarId dst_feat, ag::Parameter* v);

}  // namespace dgnn::models

#endif  // DGNN_MODELS_COMMON_H_
