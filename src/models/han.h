// HAN (Wang et al., WWW'19): heterogeneous graph attention network with
// meta-path-guided hierarchical attention. Following the reproduced
// paper's setup, HAN encodes the collaborative heterogeneous graph with
// hand-constructed meta-paths:
//   users: U-U (social) and U-I-U (co-interaction),
//   items: I-U-I (co-consumption) and I-R-I (shared category).
// Node-level GAT attention aggregates within each meta-path; semantic
// attention (a global softmax over meta-paths) fuses the per-path
// embeddings. This is the baseline the paper criticizes for requiring
// domain-specific meta-path engineering.

#ifndef DGNN_MODELS_HAN_H_
#define DGNN_MODELS_HAN_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct HanConfig {
  int64_t embedding_dim = 16;
  // Max retained neighbors per node in composed meta-path adjacency.
  int64_t metapath_cap = 16;
  uint64_t seed = 42;
};

class Han : public RecModel {
 public:
  Han(const graph::HeteroGraph& graph, HanConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  struct PathModules {
    graph::EdgeList edges;
    ag::Parameter* w = nullptr;      // node-level projection
    ag::Parameter* att_v = nullptr;  // node-level attention vector
  };

  // Node-level attention over one meta-path, then returns the path
  // embedding (num_nodes x d).
  ag::VarId PathEmbedding(ag::Tape& tape, ag::VarId h,
                          const PathModules& path, int64_t num_nodes) const;
  // Semantic attention across path embeddings.
  ag::VarId SemanticCombine(ag::Tape& tape,
                            const std::vector<ag::VarId>& paths,
                            ag::Parameter* w, ag::Parameter* q) const;

  std::string name_ = "HAN";
  HanConfig config_;
  int32_t num_users_, num_items_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  std::vector<PathModules> user_paths_;
  std::vector<PathModules> item_paths_;
  ag::Parameter* sem_w_user_;
  ag::Parameter* sem_q_user_;
  ag::Parameter* sem_w_item_;
  ag::Parameter* sem_q_item_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_HAN_H_
