// EATNN (Chen et al., SIGIR'19): efficient adaptive transfer network.
// Users hold a shared embedding plus two domain-specific ones
// (consumption, social); a per-user adaptive gate transfers knowledge
// between domains:
//
//   g_u   = sigmoid(e_u W_g)
//   u_itm = e_u + g_u .* c_u           (item-domain view, used for scoring)
//   u_soc = e_u + (1 - g_u) .* s_u     (social-domain view)
//
// Faithful simplification (documented in DESIGN.md): the original's
// whole-data efficient multi-task optimizer is replaced by the shared BPR
// trainer, with the social task expressed as an auxiliary BPR loss over
// social ties (friend vs. random non-friend) on the social-domain view.

#ifndef DGNN_MODELS_EATNN_H_
#define DGNN_MODELS_EATNN_H_

#include <string>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct EatnnConfig {
  int64_t embedding_dim = 16;
  // Weight of the auxiliary social-prediction task.
  float social_task_weight = 0.2f;
  uint64_t seed = 42;
};

class Eatnn : public RecModel {
 public:
  Eatnn(const graph::HeteroGraph& graph, EatnnConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

  // The social-negative sampling stream advances every training forward;
  // resume must restore it or post-resume auxiliary negatives diverge.
  std::string SaveStochasticState() const override {
    std::string out;
    util::AppendRngState(neg_rng_.state(), &out);
    return out;
  }
  util::Status RestoreStochasticState(const std::string& blob) override {
    util::RngState st;
    size_t pos = 0;
    DGNN_RETURN_IF_ERROR(util::ParseRngState(blob, &pos, &st));
    if (pos != blob.size()) {
      return util::Status::InvalidArgument(
          "trailing bytes in EATNN stochastic state");
    }
    neg_rng_.set_state(st);
    return util::Status::Ok();
  }

 private:
  std::string name_ = "EATNN";
  EatnnConfig config_;
  int32_t num_users_;
  ag::ParamStore params_;
  util::Rng neg_rng_;
  ag::Parameter* shared_emb_;
  ag::Parameter* consume_emb_;
  ag::Parameter* social_emb_;
  ag::Parameter* gate_w_;  // d x d
  ag::Parameter* item_emb_;
  graph::EdgeList social_edges_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_EATNN_H_
