#include "models/diffnet.h"

#include "util/strings.h"

namespace dgnn::models {

DiffNet::DiffNet(const graph::HeteroGraph& graph, DiffNetConfig config)
    : config_(config) {
  util::Rng rng(config.seed);
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(),
                                   config.embedding_dim, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(),
                                   config.embedding_dim, rng);
  for (int l = 0; l < config.num_layers; ++l) {
    w_.push_back(params_.CreateXavier(util::StrFormat("w_%d", l),
                                      2 * config.embedding_dim,
                                      config.embedding_dim, rng));
  }
  social_norm_ = graph::HeteroGraph::RowNormalized(graph.social());
  social_norm_t_ = social_norm_.Transposed();
  ui_norm_ = graph::HeteroGraph::RowNormalized(graph.user_item());
  ui_norm_t_ = ui_norm_.Transposed();
}

ForwardResult DiffNet::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h_user = tape.Param(user_emb_);
  ag::VarId h_item = tape.Param(item_emb_);
  for (int l = 0; l < config_.num_layers; ++l) {
    ag::VarId diffused = tape.SpMM(&social_norm_, &social_norm_t_, h_user);
    ag::VarId joint = tape.ConcatCols({diffused, h_user});
    h_user = tape.LeakyRelu(
        tape.MatMul(joint, tape.Param(w_[static_cast<size_t>(l)])),
        config_.leaky_slope);
  }
  // Fuse with the mean of interacted item embeddings.
  ag::VarId item_pref = tape.SpMM(&ui_norm_, &ui_norm_t_, h_item);
  ForwardResult out;
  out.users = tape.Add(h_user, item_pref);
  out.items = h_item;
  return out;
}

}  // namespace dgnn::models
