// BPR-MF: plain matrix factorization trained with the BPR loss — the
// common ancestor of every graph model here and a sanity baseline for the
// examples and tests (not part of the paper's Table II).

#ifndef DGNN_MODELS_BPR_MF_H_
#define DGNN_MODELS_BPR_MF_H_

#include <string>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

class BprMf : public RecModel {
 public:
  BprMf(const graph::HeteroGraph& graph, int64_t dim, uint64_t seed);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return dim_; }

 private:
  std::string name_ = "BPR-MF";
  int64_t dim_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_BPR_MF_H_
