#include "models/ngcf.h"

#include "util/strings.h"

namespace dgnn::models {

Ngcf::Ngcf(const graph::HeteroGraph& graph, NgcfConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()),
      dropout_rng_(config.seed ^ 0x9e37ULL) {
  util::Rng rng(config.seed);
  const int64_t n =
      graph.num_users() + graph.num_items() + graph.num_relations();
  node_emb_ = params_.CreateXavier("node_emb", n, config.embedding_dim, rng);
  for (int l = 0; l < config.num_layers; ++l) {
    w1_.push_back(params_.CreateXavier(util::StrFormat("w1_%d", l),
                                       config.embedding_dim,
                                       config.embedding_dim, rng));
    w2_.push_back(params_.CreateXavier(util::StrFormat("w2_%d", l),
                                       config.embedding_dim,
                                       config.embedding_dim, rng));
  }
  adj_ = graph.UnifiedNormalized(/*include_social=*/true,
                                 /*include_relations=*/true);
  adj_t_ = adj_.Transposed();
}

ForwardResult Ngcf::Forward(ag::Tape& tape, bool training) {
  ag::VarId h = tape.Param(node_emb_);
  std::vector<ag::VarId> layers = {h};
  for (int l = 0; l < config_.num_layers; ++l) {
    ag::VarId side = tape.SpMM(&adj_, &adj_t_, h);  // A H
    // (A + I) H W1 + (A H .* H) W2
    ag::VarId sum_term =
        tape.MatMul(tape.Add(side, h), tape.Param(w1_[static_cast<size_t>(l)]));
    ag::VarId bi_term = tape.MatMul(
        tape.Mul(side, h), tape.Param(w2_[static_cast<size_t>(l)]));
    h = tape.LeakyRelu(tape.Add(sum_term, bi_term), config_.leaky_slope);
    if (training && config_.node_dropout > 0.0f) {
      h = tape.Dropout(h, config_.node_dropout, dropout_rng_, training);
    }
    h = tape.RowL2Normalize(h);
    layers.push_back(h);
  }
  ag::VarId all = tape.ConcatCols(layers);
  ForwardResult out;
  out.users = tape.SliceRows(all, 0, num_users_);
  out.items = tape.SliceRows(all, num_users_, num_items_);
  return out;
}

}  // namespace dgnn::models
