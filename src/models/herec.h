// HERec (Shi et al., TKDE'18): heterogeneous network embedding for
// recommendation. Meta-path-guided random walks (U-U, U-I-U for users;
// I-U-I, I-R-I for items) are embedded with skip-gram negative sampling
// (own SGNS implementation, trained at construction time); the frozen walk
// embeddings are fused into an MF scoring model through learned per-path
// non-linear transforms:
//
//   final_u = e_u + sum_p tanh( walk_emb_p(u) W_p )
//
// Only e_u / e_i / W_p train under BPR, mirroring the original's
// two-stage embed-then-fuse design.

#ifndef DGNN_MODELS_HEREC_H_
#define DGNN_MODELS_HEREC_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct HerecConfig {
  int64_t embedding_dim = 16;
  int walks_per_node = 4;
  int walk_length = 8;
  int window = 2;
  int negatives = 2;
  int sgns_epochs = 2;
  float sgns_learning_rate = 0.05f;
  int64_t metapath_cap = 16;
  uint64_t seed = 42;
};

// Skip-gram-with-negative-sampling embeddings of random walks over a
// weighted graph. Exposed for testing.
ag::Tensor TrainWalkEmbeddings(const graph::CsrMatrix& adj,
                               const HerecConfig& config, uint64_t seed);

class Herec : public RecModel {
 public:
  Herec(const graph::HeteroGraph& graph, HerecConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  std::string name_ = "HERec";
  HerecConfig config_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  // Frozen SGNS embeddings per meta-path, plus their fusion transforms.
  std::vector<ag::Tensor> user_walk_embs_;
  std::vector<ag::Parameter*> user_fuse_w_;
  std::vector<ag::Tensor> item_walk_embs_;
  std::vector<ag::Parameter*> item_fuse_w_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_HEREC_H_
