// DiffNet (Wu et al., SIGIR'19): layer-wise social influence diffusion.
// User embeddings diffuse over the social graph for L layers,
//
//   h_u^(l+1) = sigma( W_l [ mean_{f in N_S(u)} h_f^l ; h_u^l ] )
//
// and the final user representation adds the mean of interacted items'
// free embeddings; items keep free embeddings. This follows the original
// "influence diffusion + fusion" design with the user/item feature inputs
// dropped (no side features in the ranking protocol).

#ifndef DGNN_MODELS_DIFFNET_H_
#define DGNN_MODELS_DIFFNET_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct DiffNetConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  float leaky_slope = 0.2f;
  uint64_t seed = 42;
};

class DiffNet : public RecModel {
 public:
  DiffNet(const graph::HeteroGraph& graph, DiffNetConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  std::string name_ = "DiffNet";
  DiffNetConfig config_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  std::vector<ag::Parameter*> w_;  // per layer, (2d x d)
  graph::CsrMatrix social_norm_, social_norm_t_;
  graph::CsrMatrix ui_norm_, ui_norm_t_;  // row-normalized user-item
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_DIFFNET_H_
