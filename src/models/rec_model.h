// RecModel — the interface every recommender in the library implements:
// the paper's DGNN (src/core) and all fourteen comparison baselines
// (src/models). The trainer and evaluator only speak this interface, so
// every model trains under the identical BPR protocol the paper uses.

#ifndef DGNN_MODELS_REC_MODEL_H_
#define DGNN_MODELS_REC_MODEL_H_

#include <string>

#include "ag/tape.h"
#include "util/status.h"

namespace dgnn::models {

// Result of one forward pass. `users` / `items` are the *final scoring*
// embeddings: the trainer and evaluator compute scores as row dot products
// of these, so any model-specific scoring-time augmentation (e.g. DGNN's
// social recalibration tau, Eq. 10) must already be folded into `users`.
// `aux_loss` is an optional model-specific training objective added to the
// BPR loss (e.g. MHCN's self-supervised term); -1 when absent.
struct ForwardResult {
  ag::VarId users = -1;
  ag::VarId items = -1;
  ag::VarId aux_loss = -1;
};

class RecModel {
 public:
  virtual ~RecModel() = default;

  virtual const std::string& name() const = 0;

  // Builds the model's computation graph on `tape` and returns the final
  // embeddings. Called once per training batch (gradients flow) and once
  // per evaluation (training=false; dropout etc. disabled).
  virtual ForwardResult Forward(ag::Tape& tape, bool training) = 0;

  // Trainable state; the trainer owns the optimizer over this store.
  virtual ag::ParamStore& params() = 0;

  // Embedding width of the final representations.
  virtual int64_t embedding_dim() const = 0;

  // Serializable model-owned stochastic state consumed during TRAINING
  // forwards (dropout RNG, shuffle RNG, auxiliary negative sampling) —
  // everything beyond ParamStore that the next training batch depends
  // on. Checkpoint/resume must round-trip it or resumed runs diverge
  // from uninterrupted ones. Most models are stateless between batches
  // and keep these defaults; RestoreStochasticState rejects a non-empty
  // blob so a checkpoint from a stateful model cannot silently load into
  // a build where that state vanished.
  virtual std::string SaveStochasticState() const { return std::string(); }
  virtual util::Status RestoreStochasticState(const std::string& blob) {
    if (!blob.empty()) {
      return util::Status::InvalidArgument(
          "model '" + name() + "' has no stochastic state, but the "
          "checkpoint carries " + std::to_string(blob.size()) + " bytes");
    }
    return util::Status::Ok();
  }
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_REC_MODEL_H_
