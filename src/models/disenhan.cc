#include "models/disenhan.h"

#include "util/strings.h"

namespace dgnn::models {

DisenHan::DisenHan(const graph::HeteroGraph& graph, DisenHanConfig config)
    : config_(config), has_relations_(graph.num_relations() > 0) {
  DGNN_CHECK_EQ(config.embedding_dim % config.num_facets, 0)
      << "embedding_dim must divide evenly across facets";
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  const int64_t df = d / config.num_facets;
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(), d, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(), d, rng);
  rel_emb_ = has_relations_
                 ? params_.CreateXavier("rel_emb", graph.num_relations(), d,
                                        rng)
                 : nullptr;
  for (int k = 0; k < config.num_facets; ++k) {
    user_proj_.push_back(params_.CreateXavier(
        util::StrFormat("user_proj_%d", k), d, df, rng));
    item_proj_.push_back(params_.CreateXavier(
        util::StrFormat("item_proj_%d", k), d, df, rng));
    rel_proj_.push_back(params_.CreateXavier(
        util::StrFormat("rel_proj_%d", k), d, df, rng));
    att_w_.push_back(params_.CreateXavier(util::StrFormat("att_w_%d", k),
                                          df, df, rng));
    att_q_.push_back(params_.CreateXavier(util::StrFormat("att_q_%d", k),
                                          1, df, rng));
  }
  social_norm_ = graph::HeteroGraph::RowNormalized(graph.social());
  social_norm_t_ = social_norm_.Transposed();
  ui_norm_ = graph::HeteroGraph::RowNormalized(graph.user_item());
  ui_norm_t_ = ui_norm_.Transposed();
  iu_norm_ = graph::HeteroGraph::RowNormalized(graph.item_user());
  iu_norm_t_ = iu_norm_.Transposed();
  if (has_relations_) {
    ir_norm_ = graph::HeteroGraph::RowNormalized(graph.item_rel());
    ir_norm_t_ = ir_norm_.Transposed();
  }
}

ForwardResult DisenHan::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h_user = tape.Param(user_emb_);
  ag::VarId h_item = tape.Param(item_emb_);
  ag::VarId h_rel = has_relations_ ? tape.Param(rel_emb_) : -1;

  // Combines relation-specific facet contexts via relation-level
  // attention: alpha = softmax_rel <tanh(c_rel W), q>.
  auto combine = [&](int facet, ag::VarId self,
                     const std::vector<ag::VarId>& contexts) {
    std::vector<ag::VarId> scores;
    scores.reserve(contexts.size());
    for (ag::VarId c : contexts) {
      ag::VarId keyed = tape.Tanh(
          tape.MatMul(c, tape.Param(att_w_[static_cast<size_t>(facet)])));
      scores.push_back(tape.MatMul(
          keyed, tape.Param(att_q_[static_cast<size_t>(facet)]), false,
          true));
    }
    ag::VarId attn = tape.RowSoftmax(tape.ConcatCols(scores));
    std::vector<ag::VarId> weighted = {self};
    for (size_t r = 0; r < contexts.size(); ++r) {
      weighted.push_back(tape.RowScale(
          contexts[r], tape.Col(attn, static_cast<int64_t>(r))));
    }
    return tape.AddN(weighted);
  };

  std::vector<ag::VarId> user_facets, item_facets;
  for (int k = 0; k < config_.num_facets; ++k) {
    ag::VarId u_k = tape.MatMul(
        h_user, tape.Param(user_proj_[static_cast<size_t>(k)]));
    ag::VarId i_k = tape.MatMul(
        h_item, tape.Param(item_proj_[static_cast<size_t>(k)]));

    // User facet: contexts from social ties and interacted items.
    std::vector<ag::VarId> user_ctx = {
        tape.SpMM(&ui_norm_, &ui_norm_t_, i_k),
        tape.SpMM(&social_norm_, &social_norm_t_, u_k),
    };
    user_facets.push_back(combine(k, u_k, user_ctx));

    // Item facet: contexts from interacting users and relation nodes.
    std::vector<ag::VarId> item_ctx = {
        tape.SpMM(&iu_norm_, &iu_norm_t_, u_k)};
    if (has_relations_) {
      ag::VarId r_k = tape.MatMul(
          h_rel, tape.Param(rel_proj_[static_cast<size_t>(k)]));
      item_ctx.push_back(tape.SpMM(&ir_norm_, &ir_norm_t_, r_k));
    }
    item_facets.push_back(combine(k, i_k, item_ctx));
  }

  ForwardResult out;
  out.users = tape.ConcatCols(user_facets);
  out.items = tape.ConcatCols(item_facets);
  return out;
}

}  // namespace dgnn::models
