// GraphRec (Fan et al., WWW'19): graph attention over both the social
// network and the interaction graph.
//   * item aggregation: user latent = attention over interacted items;
//   * social aggregation: attention over friends' item-space latents;
//   * user aggregation: item latent = attention over interacting users.
// The original predicts ratings through an MLP; under the reproduced
// paper's top-N ranking protocol scoring is the dot product of the final
// user/item latents (a standard adaptation, noted in DESIGN.md).

#ifndef DGNN_MODELS_GRAPHREC_H_
#define DGNN_MODELS_GRAPHREC_H_

#include <string>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct GraphRecConfig {
  int64_t embedding_dim = 16;
  uint64_t seed = 42;
};

class GraphRec : public RecModel {
 public:
  GraphRec(const graph::HeteroGraph& graph, GraphRecConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  std::string name_ = "GraphRec";
  GraphRecConfig config_;
  int32_t num_users_, num_items_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  // Attention parameters per aggregation (projection + scoring vector).
  ag::Parameter* item_agg_w_;
  ag::Parameter* item_agg_v_;
  ag::Parameter* social_agg_w_;
  ag::Parameter* social_agg_v_;
  ag::Parameter* user_agg_w_;
  ag::Parameter* user_agg_v_;
  ag::Parameter* fuse_w_;  // (2d x d) fusing item-space and social latents
  graph::EdgeList item_to_user_;
  graph::EdgeList user_to_item_;
  graph::EdgeList social_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_GRAPHREC_H_
