// GCCF / LR-GCCF (Chen et al., AAAI'20): linear residual graph
// convolutional collaborative filtering. The non-linear transformation is
// removed ("revisiting graph based CF"):
//
//   H^(l+1) = A H^l W_l        (linear, no activation)
//
// with residual concatenation of all layers. Like NGCF, it runs on the
// context-enhanced unified adjacency (social + item-relation edges added)
// per the reproduced paper's fair-comparison setup.

#ifndef DGNN_MODELS_GCCF_H_
#define DGNN_MODELS_GCCF_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct GccfConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  uint64_t seed = 42;
};

class Gccf : public RecModel {
 public:
  Gccf(const graph::HeteroGraph& graph, GccfConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override {
    return config_.embedding_dim * (config_.num_layers + 1);
  }

 private:
  std::string name_ = "GCCF";
  GccfConfig config_;
  int32_t num_users_, num_items_;
  ag::ParamStore params_;
  ag::Parameter* node_emb_;
  std::vector<ag::Parameter*> w_;
  graph::CsrMatrix adj_, adj_t_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_GCCF_H_
