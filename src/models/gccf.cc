#include "models/gccf.h"

#include "util/strings.h"

namespace dgnn::models {

Gccf::Gccf(const graph::HeteroGraph& graph, GccfConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()) {
  util::Rng rng(config.seed);
  const int64_t n =
      graph.num_users() + graph.num_items() + graph.num_relations();
  node_emb_ = params_.CreateXavier("node_emb", n, config.embedding_dim, rng);
  for (int l = 0; l < config.num_layers; ++l) {
    w_.push_back(params_.CreateXavier(util::StrFormat("w_%d", l),
                                      config.embedding_dim,
                                      config.embedding_dim, rng));
  }
  adj_ = graph.UnifiedNormalized(/*include_social=*/true,
                                 /*include_relations=*/true);
  adj_t_ = adj_.Transposed();
}

ForwardResult Gccf::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h = tape.Param(node_emb_);
  std::vector<ag::VarId> layers = {h};
  for (int l = 0; l < config_.num_layers; ++l) {
    h = tape.MatMul(tape.SpMM(&adj_, &adj_t_, h),
                    tape.Param(w_[static_cast<size_t>(l)]));
    layers.push_back(h);
  }
  ag::VarId all = tape.ConcatCols(layers);
  ForwardResult out;
  out.users = tape.SliceRows(all, 0, num_users_);
  out.items = tape.SliceRows(all, num_users_, num_items_);
  return out;
}

}  // namespace dgnn::models
