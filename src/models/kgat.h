// KGAT (Wang et al., KDD'19): knowledge graph attention network over the
// unified user-item-entity graph. Here the knowledge graph is the paper's
// item-relation structure T: relation nodes act as entities, giving four
// typed edge sets (interact / interacted-by / has-category / category-of),
// each with its own relation embedding. Per layer:
//
//   pi(e)  = < W h_src , tanh(W h_dst + e_r) >        (TransR-style score)
//   att    = softmax of pi over each node's incoming edges (all types)
//   agg(v) = sum_e att_e * (W h_src)
//   h'     = LeakyReLU(W1 (h + agg)) + LeakyReLU(W2 (h .* agg))
//
// with cross-layer concatenation (the original's bi-interaction
// aggregator and layer combination).

#ifndef DGNN_MODELS_KGAT_H_
#define DGNN_MODELS_KGAT_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct KgatConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  float leaky_slope = 0.2f;
  uint64_t seed = 42;
};

class Kgat : public RecModel {
 public:
  Kgat(const graph::HeteroGraph& graph, KgatConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override {
    return config_.embedding_dim * (config_.num_layers + 1);
  }

 private:
  std::string name_ = "KGAT";
  KgatConfig config_;
  int32_t num_users_, num_items_;
  int64_t num_nodes_;
  ag::ParamStore params_;
  ag::Parameter* node_emb_;
  ag::Parameter* rel_type_emb_;  // 4 x d, one row per typed edge set
  std::vector<ag::Parameter*> w_;   // attention/message transform per layer
  std::vector<ag::Parameter*> w1_;  // bi-interaction sum path
  std::vector<ag::Parameter*> w2_;  // bi-interaction product path
  // All typed edges concatenated, in unified node ids.
  std::vector<int32_t> edge_src_, edge_dst_, edge_type_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_KGAT_H_
