// LightGCN (He et al., SIGIR'20): parameter-free propagation
// H^(l+1) = A H^l with mean pooling across layers. Not one of the
// reproduced paper's Table II baselines — included as the de-facto
// reference CF model for the examples and as a sanity anchor in tests.

#ifndef DGNN_MODELS_LIGHTGCN_H_
#define DGNN_MODELS_LIGHTGCN_H_

#include <string>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct LightGcnConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  // When true, propagate over the unified graph (social + relations);
  // when false, the classic user-item bipartite graph.
  bool use_side_context = true;
  uint64_t seed = 42;
};

class LightGcn : public RecModel {
 public:
  LightGcn(const graph::HeteroGraph& graph, LightGcnConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  std::string name_ = "LightGCN";
  LightGcnConfig config_;
  int32_t num_users_, num_items_;
  ag::ParamStore params_;
  ag::Parameter* node_emb_;
  graph::CsrMatrix adj_, adj_t_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_LIGHTGCN_H_
