#include "models/lightgcn.h"

namespace dgnn::models {

LightGcn::LightGcn(const graph::HeteroGraph& graph, LightGcnConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()) {
  util::Rng rng(config.seed);
  if (config.use_side_context) {
    adj_ = graph.UnifiedNormalized(true, true);
  } else {
    adj_ = graph.BipartiteNormalized();
  }
  node_emb_ = params_.CreateXavier("node_emb", adj_.rows(),
                                   config.embedding_dim, rng);
  adj_t_ = adj_.Transposed();
}

ForwardResult LightGcn::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h = tape.Param(node_emb_);
  std::vector<ag::VarId> layers = {h};
  for (int l = 0; l < config_.num_layers; ++l) {
    h = tape.SpMM(&adj_, &adj_t_, h);
    layers.push_back(h);
  }
  // Mean pooling across layers.
  ag::VarId pooled = tape.ScalarMul(
      tape.AddN(layers), 1.0f / static_cast<float>(layers.size()));
  ForwardResult out;
  out.users = tape.SliceRows(pooled, 0, num_users_);
  out.items = tape.SliceRows(pooled, num_users_, num_items_);
  return out;
}

}  // namespace dgnn::models
