#include "models/graphrec.h"

#include "models/common.h"

namespace dgnn::models {

GraphRec::GraphRec(const graph::HeteroGraph& graph, GraphRecConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()) {
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(), d, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(), d, rng);
  item_agg_w_ = params_.CreateXavier("item_agg_w", d, d, rng);
  item_agg_v_ = params_.CreateXavier("item_agg_v", 1, d, rng);
  social_agg_w_ = params_.CreateXavier("social_agg_w", d, d, rng);
  social_agg_v_ = params_.CreateXavier("social_agg_v", 1, d, rng);
  user_agg_w_ = params_.CreateXavier("user_agg_w", d, d, rng);
  user_agg_v_ = params_.CreateXavier("user_agg_v", 1, d, rng);
  fuse_w_ = params_.CreateXavier("fuse_w", 2 * d, d, rng);
  item_to_user_ = graph.ItemToUserEdges();
  user_to_item_ = graph.UserToItemEdges();
  social_ = graph.UserToUserEdges();
}

ForwardResult GraphRec::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h_user = tape.Param(user_emb_);
  ag::VarId h_item = tape.Param(item_emb_);

  // Item aggregation: user's item-space latent from interacted items.
  ag::VarId item_space = h_user;
  if (item_to_user_.size() > 0) {
    EdgeFeatures ef = GatherEdgeFeatures(tape, h_item, h_user, item_to_user_);
    ag::VarId proj = tape.MatMul(ef.src, tape.Param(item_agg_w_));
    ag::VarId scores = AdditiveAttentionScores(tape, proj, ef.dst,
                                               item_agg_v_);
    item_space = tape.Add(
        h_user,
        EdgeSoftmaxAggregate(tape, proj, scores, item_to_user_.dst,
                             num_users_));
  }

  // Social aggregation: attention over friends' item-space latents.
  ag::VarId social_space = h_user;
  if (social_.size() > 0) {
    EdgeFeatures ef =
        GatherEdgeFeatures(tape, item_space, h_user, social_);
    ag::VarId proj = tape.MatMul(ef.src, tape.Param(social_agg_w_));
    ag::VarId scores =
        AdditiveAttentionScores(tape, proj, ef.dst, social_agg_v_);
    social_space = tape.Add(
        h_user,
        EdgeSoftmaxAggregate(tape, proj, scores, social_.dst, num_users_));
  }

  // Fuse the two user latents.
  ag::VarId user_final = tape.Tanh(tape.MatMul(
      tape.ConcatCols({item_space, social_space}), tape.Param(fuse_w_)));

  // User aggregation on the item side.
  ag::VarId item_final = h_item;
  if (user_to_item_.size() > 0) {
    EdgeFeatures ef = GatherEdgeFeatures(tape, h_user, h_item, user_to_item_);
    ag::VarId proj = tape.MatMul(ef.src, tape.Param(user_agg_w_));
    ag::VarId scores =
        AdditiveAttentionScores(tape, proj, ef.dst, user_agg_v_);
    item_final = tape.Add(
        h_item,
        EdgeSoftmaxAggregate(tape, proj, scores, user_to_item_.dst,
                             num_items_));
  }

  ForwardResult out;
  out.users = user_final;
  out.items = item_final;
  return out;
}

}  // namespace dgnn::models
