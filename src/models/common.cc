#include "models/common.h"

namespace dgnn::models {

EdgeFeatures GatherEdgeFeatures(ag::Tape& tape, ag::VarId h_src,
                                ag::VarId h_dst,
                                const graph::EdgeList& edges) {
  EdgeFeatures out;
  out.src = tape.GatherRows(h_src, edges.src);
  out.dst = tape.GatherRows(h_dst, edges.dst);
  return out;
}

ag::VarId EdgeSoftmaxAggregate(ag::Tape& tape, ag::VarId messages,
                               ag::VarId scores,
                               const std::vector<int32_t>& dst,
                               int64_t num_dst) {
  ag::VarId attn = tape.SegmentSoftmax(scores, dst, num_dst);
  return tape.SegmentSum(tape.RowScale(messages, attn), dst, num_dst);
}

ag::VarId AdditiveAttentionScores(ag::Tape& tape, ag::VarId src_feat,
                                  ag::VarId dst_feat, ag::Parameter* v) {
  ag::VarId joint = tape.Tanh(tape.Add(src_feat, dst_feat));
  // (E x d) @ (1 x d)^T -> (E x 1)
  return tape.MatMul(joint, tape.Param(v), false, true);
}

}  // namespace dgnn::models
