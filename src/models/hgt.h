// HGT (Hu et al., WWW'20): heterogeneous graph transformer. Node-type
// specific Q/K/V projections, edge-type specific attention and message
// matrices, and per-target softmax across ALL incoming heterogeneous
// edges:
//
//   att(e)  = < K(h_src) W_att^type , Q(h_dst) > / sqrt(d)
//   msg(e)  = V(h_src) W_msg^type
//   agg(v)  = sum_e softmax_v(att) * msg
//   h'(v)   = A_out^type(agg) + h(v)           (residual)
//
// applied to the collaborative heterogeneous graph's five directed edge
// sets (item->user, user->item, user->user, rel->item, item->rel).

#ifndef DGNN_MODELS_HGT_H_
#define DGNN_MODELS_HGT_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct HgtConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  // Attention heads; embedding_dim must divide evenly. Each head owns its
  // own Q/K/V and edge-type attention/message projections into a
  // d/heads-wide subspace; head outputs are concatenated (the original's
  // multi-head dot-product attention). The default single head matches
  // the benchmark configuration.
  int num_heads = 1;
  uint64_t seed = 42;
};

class Hgt : public RecModel {
 public:
  Hgt(const graph::HeteroGraph& graph, HgtConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  // Node types.
  enum NodeType { kUser = 0, kItem = 1, kRel = 2, kNumNodeTypes = 3 };
  // Directed edge sets.
  enum EdgeType {
    kItemToUser = 0,
    kUserToItem = 1,
    kUserToUser = 2,
    kRelToItem = 3,
    kItemToRel = 4,
    kNumEdgeTypes = 5,
  };

  struct LayerParams {
    // Indexed by [node type][head].
    std::vector<std::vector<ag::Parameter*>> q, k, v;
    // Output projection per node type (d x d, applied after head concat).
    std::vector<ag::Parameter*> out;
    // Indexed by [edge type][head].
    std::vector<std::vector<ag::Parameter*>> w_att, w_msg;
  };

  std::string name_ = "HGT";
  HgtConfig config_;
  int32_t num_users_, num_items_, num_rels_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  ag::Parameter* rel_emb_;
  std::vector<LayerParams> layers_;
  std::vector<graph::EdgeList> edges_;  // indexed by EdgeType
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_HGT_H_
