#include "models/dgrec.h"

#include <algorithm>

#include "models/common.h"

namespace dgnn::models {

DgRec::DgRec(const data::Dataset& dataset, const graph::HeteroGraph& graph,
             DgRecConfig config)
    : config_(config), num_users_(graph.num_users()) {
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(), d, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(), d, rng);
  w_z_ = params_.CreateXavier("w_z", d, d, rng);
  u_z_ = params_.CreateXavier("u_z", d, d, rng);
  b_z_ = params_.CreateZero("b_z", 1, d);
  w_r_ = params_.CreateXavier("w_r", d, d, rng);
  u_r_ = params_.CreateXavier("u_r", d, d, rng);
  b_r_ = params_.CreateZero("b_r", 1, d);
  w_n_ = params_.CreateXavier("w_n", d, d, rng);
  u_n_ = params_.CreateXavier("u_n", d, d, rng);
  b_n_ = params_.CreateZero("b_n", 1, d);
  att_w_ = params_.CreateXavier("att_w", d, d, rng);
  att_v_ = params_.CreateXavier("att_v", 1, d, rng);
  fuse_w_ = params_.CreateXavier("fuse_w", 2 * d, d, rng);
  social_ = graph.UserToUserEdges();

  // Build padded sessions: the last `session_length` training interactions
  // of every user, oldest first.
  std::vector<std::vector<int32_t>> per_user(
      static_cast<size_t>(dataset.num_users));
  {
    std::vector<std::vector<data::Interaction>> tmp(
        static_cast<size_t>(dataset.num_users));
    for (const auto& it : dataset.train) {
      tmp[static_cast<size_t>(it.user)].push_back(it);
    }
    for (size_t u = 0; u < tmp.size(); ++u) {
      std::stable_sort(tmp[u].begin(), tmp[u].end(),
                       [](const auto& a, const auto& b) {
                         return a.time < b.time;
                       });
      const size_t keep = std::min<size_t>(
          tmp[u].size(), static_cast<size_t>(config.session_length));
      for (size_t i = tmp[u].size() - keep; i < tmp[u].size(); ++i) {
        per_user[u].push_back(tmp[u][i].item);
      }
    }
  }
  const int t_max = config.session_length;
  session_items_.assign(static_cast<size_t>(t_max),
                        std::vector<int32_t>(
                            static_cast<size_t>(dataset.num_users), 0));
  session_masks_.assign(static_cast<size_t>(t_max),
                        ag::Tensor(dataset.num_users, 1));
  for (int32_t u = 0; u < dataset.num_users; ++u) {
    const auto& items = per_user[static_cast<size_t>(u)];
    // Right-align so the newest interaction is the last GRU step.
    const int offset = t_max - static_cast<int>(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      const int t = offset + static_cast<int>(i);
      session_items_[static_cast<size_t>(t)][static_cast<size_t>(u)] =
          items[i];
      session_masks_[static_cast<size_t>(t)].at(u, 0) = 1.0f;
    }
  }
}

ag::VarId DgRec::GruStep(ag::Tape& tape, ag::VarId x, ag::VarId h,
                         ag::VarId mask) const {
  ag::VarId z = tape.Sigmoid(tape.AddRowBroadcast(
      tape.Add(tape.MatMul(x, tape.Param(w_z_)),
               tape.MatMul(h, tape.Param(u_z_))),
      tape.Param(b_z_)));
  ag::VarId r = tape.Sigmoid(tape.AddRowBroadcast(
      tape.Add(tape.MatMul(x, tape.Param(w_r_)),
               tape.MatMul(h, tape.Param(u_r_))),
      tape.Param(b_r_)));
  ag::VarId n = tape.Tanh(tape.AddRowBroadcast(
      tape.Add(tape.MatMul(x, tape.Param(w_n_)),
               tape.MatMul(tape.Mul(r, h), tape.Param(u_n_))),
      tape.Param(b_n_)));
  // h' = (1 - z) .* n + z .* h, applied only where the step is valid.
  ag::VarId candidate = tape.Add(tape.Sub(n, tape.Mul(z, n)),
                                 tape.Mul(z, h));
  ag::VarId keep_new = tape.RowScale(candidate, mask);
  ag::VarId ones = tape.Constant(
      ag::Tensor::Full(tape.val(mask).rows(), 1, 1.0f));
  ag::VarId keep_old = tape.RowScale(h, tape.Sub(ones, mask));
  return tape.Add(keep_new, keep_old);
}

ForwardResult DgRec::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h_item = tape.Param(item_emb_);
  ag::VarId h_user_long = tape.Param(user_emb_);

  // Short-term interest: GRU over the session.
  ag::VarId state = tape.Constant(
      ag::Tensor(num_users_, config_.embedding_dim));
  for (size_t t = 0; t < session_items_.size(); ++t) {
    ag::VarId x = tape.GatherRows(h_item, session_items_[t]);
    ag::VarId mask = tape.Constant(session_masks_[t]);
    state = GruStep(tape, x, state, mask);
  }

  // Friend representation: short-term state + long-term embedding.
  ag::VarId friend_repr = tape.Add(state, h_user_long);

  // Social graph attention over friends.
  ag::VarId social_ctx = friend_repr;
  if (social_.size() > 0) {
    EdgeFeatures ef =
        GatherEdgeFeatures(tape, friend_repr, friend_repr, social_);
    ag::VarId proj = tape.MatMul(ef.src, tape.Param(att_w_));
    ag::VarId scores = AdditiveAttentionScores(tape, proj, ef.dst, att_v_);
    social_ctx =
        EdgeSoftmaxAggregate(tape, proj, scores, social_.dst, num_users_);
  }

  ForwardResult out;
  out.users = tape.MatMul(tape.ConcatCols({friend_repr, social_ctx}),
                          tape.Param(fuse_w_));
  out.items = h_item;
  return out;
}

}  // namespace dgnn::models
