#include "models/eatnn.h"

namespace dgnn::models {

Eatnn::Eatnn(const graph::HeteroGraph& graph, EatnnConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      neg_rng_(config.seed ^ 0xabcdULL) {
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  shared_emb_ = params_.CreateXavier("shared_emb", graph.num_users(), d, rng);
  consume_emb_ =
      params_.CreateXavier("consume_emb", graph.num_users(), d, rng);
  social_emb_ = params_.CreateXavier("social_emb", graph.num_users(), d, rng);
  gate_w_ = params_.CreateXavier("gate_w", d, d, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(), d, rng);
  social_edges_ = graph.UserToUserEdges();
}

ForwardResult Eatnn::Forward(ag::Tape& tape, bool training) {
  ag::VarId shared = tape.Param(shared_emb_);
  ag::VarId gate = tape.Sigmoid(tape.MatMul(shared, tape.Param(gate_w_)));
  ag::VarId one_minus_gate =
      tape.Sub(tape.Constant(ag::Tensor::Full(num_users_,
                                              config_.embedding_dim, 1.0f)),
               gate);
  ag::VarId user_item_view =
      tape.Add(shared, tape.Mul(gate, tape.Param(consume_emb_)));
  ag::VarId user_social_view =
      tape.Add(shared, tape.Mul(one_minus_gate, tape.Param(social_emb_)));

  ForwardResult out;
  out.users = user_item_view;
  out.items = tape.Param(item_emb_);

  // Auxiliary social task: rank each friend above a random non-friend.
  if (training && config_.social_task_weight > 0.0f &&
      social_edges_.size() > 0) {
    std::vector<int32_t> negatives;
    negatives.reserve(static_cast<size_t>(social_edges_.size()));
    for (int64_t e = 0; e < social_edges_.size(); ++e) {
      negatives.push_back(static_cast<int32_t>(neg_rng_.UniformInt(
          num_users_)));
    }
    ag::VarId u_rows = tape.GatherRows(user_social_view, social_edges_.dst);
    ag::VarId pos_rows = tape.GatherRows(user_social_view, social_edges_.src);
    ag::VarId neg_rows =
        tape.GatherRows(user_social_view, std::move(negatives));
    ag::VarId pos_scores = tape.RowDot(u_rows, pos_rows);
    ag::VarId neg_scores = tape.RowDot(u_rows, neg_rows);
    out.aux_loss = tape.ScalarMul(tape.BprLoss(pos_scores, neg_scores),
                                  config_.social_task_weight);
  }
  return out;
}

}  // namespace dgnn::models
