// DGCF (Wang et al., SIGIR'20): disentangled graph collaborative
// filtering. User/item embeddings are split into K intent chunks; an
// iterative routing mechanism softmax-distributes every interaction edge
// over the K intents (an edge that matches intent k strengthens the
// k-intent coupling of its endpoints) and propagates per-intent graph
// convolutions. Final embeddings concatenate the intent chunks.

#ifndef DGNN_MODELS_DGCF_H_
#define DGNN_MODELS_DGCF_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct DgcfConfig {
  int64_t embedding_dim = 16;  // total, split across intents
  int num_intents = 4;
  int num_layers = 1;
  int routing_iterations = 2;
  uint64_t seed = 42;
};

class Dgcf : public RecModel {
 public:
  Dgcf(const graph::HeteroGraph& graph, DgcfConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  std::string name_ = "DGCF";
  DgcfConfig config_;
  int32_t num_users_, num_items_;
  ag::ParamStore params_;
  // Per-intent chunk tables (d / K wide each).
  std::vector<ag::Parameter*> user_chunks_;
  std::vector<ag::Parameter*> item_chunks_;
  graph::EdgeList item_to_user_;  // src item, dst user (one edge list;
                                  // the reverse direction reuses it)
  ag::Tensor inv_user_deg_;       // 1/deg normalizers (U x 1)
  ag::Tensor inv_item_deg_;       // (I x 1)
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_DGCF_H_
