// NGCF (Wang et al., SIGIR'19): neural graph collaborative filtering.
// Layer rule over a normalized adjacency A (Eqs. 7-8 of that paper):
//
//   H^(l+1) = LeakyReLU( (A + I) H^l W1_l + (A H^l) .* H^l W2_l )
//
// final embeddings concatenate all layers. Per the paper under
// reproduction, the graph-CF baselines are "enhanced by incorporating the
// diverse context into the interaction graph": A here is the unified
// sym-normalized adjacency over users, items and relation nodes including
// the social and item-relation edges.

#ifndef DGNN_MODELS_NGCF_H_
#define DGNN_MODELS_NGCF_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct NgcfConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  float leaky_slope = 0.2f;
  float node_dropout = 0.0f;
  uint64_t seed = 42;
};

class Ngcf : public RecModel {
 public:
  Ngcf(const graph::HeteroGraph& graph, NgcfConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override {
    return config_.embedding_dim * (config_.num_layers + 1);
  }

  // The node-dropout stream advances every training forward; resume must
  // restore it or the post-resume dropout masks diverge.
  std::string SaveStochasticState() const override {
    std::string out;
    util::AppendRngState(dropout_rng_.state(), &out);
    return out;
  }
  util::Status RestoreStochasticState(const std::string& blob) override {
    util::RngState st;
    size_t pos = 0;
    DGNN_RETURN_IF_ERROR(util::ParseRngState(blob, &pos, &st));
    if (pos != blob.size()) {
      return util::Status::InvalidArgument(
          "trailing bytes in NGCF stochastic state");
    }
    dropout_rng_.set_state(st);
    return util::Status::Ok();
  }

 private:
  std::string name_ = "NGCF";
  NgcfConfig config_;
  int32_t num_users_, num_items_;
  ag::ParamStore params_;
  util::Rng dropout_rng_;
  ag::Parameter* node_emb_;  // users, items and relation nodes stacked
  std::vector<ag::Parameter*> w1_, w2_;
  graph::CsrMatrix adj_, adj_t_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_NGCF_H_
