#include "models/mhcn.h"

#include <algorithm>
#include <numeric>

#include "util/strings.h"

namespace dgnn::models {
namespace {

// Entrywise product with the sparsity pattern of a binary mask: keeps the
// entries of `a` whose (row, col) also appears in `mask`.
graph::CsrMatrix MaskBy(const graph::CsrMatrix& a,
                        const graph::CsrMatrix& mask) {
  graph::CooMatrix out;
  out.rows = a.rows();
  out.cols = a.cols();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const auto mb = mask.indices().begin() +
                    static_cast<int64_t>(mask.indptr()[static_cast<size_t>(r)]);
    const auto me =
        mask.indices().begin() +
        static_cast<int64_t>(mask.indptr()[static_cast<size_t>(r) + 1]);
    for (int64_t i = a.indptr()[static_cast<size_t>(r)];
         i < a.indptr()[static_cast<size_t>(r) + 1]; ++i) {
      const int32_t c = a.indices()[static_cast<size_t>(i)];
      if (std::binary_search(mb, me, c)) {
        out.Add(static_cast<int32_t>(r), c,
                a.values()[static_cast<size_t>(i)]);
      }
    }
  }
  return graph::CsrMatrix::FromCoo(out);
}

}  // namespace

Mhcn::Mhcn(const graph::HeteroGraph& graph, MhcnConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      shuffle_rng_(config.seed ^ 0x77aaULL) {
  util::Rng rng(config.seed);
  const int64_t d = config.embedding_dim;
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(), d, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(), d, rng);
  att_q_ = params_.CreateXavier("att_q", 1, d, rng);

  // Motif-induced channel adjacencies.
  const graph::CsrMatrix& s = graph.social();
  graph::CsrMatrix ss = s.Multiply(s);
  graph::CsrMatrix social_motif = MaskBy(ss, s);
  graph::CsrMatrix co = graph.user_item().Multiply(graph.item_user(),
                                                   config.purchase_cap);
  co.RemoveDiagonal();
  graph::CsrMatrix joint_motif = MaskBy(co, s);
  graph::CsrMatrix purchase = co;

  for (graph::CsrMatrix* m : {&social_motif, &joint_motif, &purchase}) {
    m->RowNormalize();
    channels_.push_back(*m);
  }
  for (const auto& c : channels_) channels_t_.push_back(c.Transposed());
  for (size_t c = 0; c < channels_.size(); ++c) {
    gate_w_.push_back(params_.CreateXavier(
        util::StrFormat("gate_w_%zu", c), d, d, rng));
  }
  ui_norm_ = graph::HeteroGraph::RowNormalized(graph.user_item());
  ui_norm_t_ = ui_norm_.Transposed();
  iu_norm_ = graph::HeteroGraph::RowNormalized(graph.item_user());
  iu_norm_t_ = iu_norm_.Transposed();
}

ForwardResult Mhcn::Forward(ag::Tape& tape, bool training) {
  ag::VarId h_user = tape.Param(user_emb_);
  ag::VarId h_item = tape.Param(item_emb_);

  // Per-channel self-gated inputs and hypergraph convolutions.
  std::vector<ag::VarId> channel_out;
  channel_out.reserve(channels_.size());
  for (size_t c = 0; c < channels_.size(); ++c) {
    ag::VarId gate =
        tape.Sigmoid(tape.MatMul(h_user, tape.Param(gate_w_[c])));
    ag::VarId h = tape.Mul(h_user, gate);
    std::vector<ag::VarId> layers = {h};
    for (int l = 0; l < config_.num_layers; ++l) {
      h = tape.SpMM(&channels_[c], &channels_t_[c], h);
      layers.push_back(h);
    }
    channel_out.push_back(tape.ScalarMul(
        tape.AddN(layers), 1.0f / static_cast<float>(layers.size())));
  }

  // Channel attention: score_c(u) = <h_c(u), q>, softmax across channels.
  std::vector<ag::VarId> scores;
  scores.reserve(channel_out.size());
  for (ag::VarId h : channel_out) {
    scores.push_back(tape.MatMul(h, tape.Param(att_q_), false, true));
  }
  ag::VarId attn = tape.RowSoftmax(tape.ConcatCols(scores));
  std::vector<ag::VarId> weighted;
  weighted.reserve(channel_out.size());
  for (size_t c = 0; c < channel_out.size(); ++c) {
    weighted.push_back(tape.RowScale(
        channel_out[c], tape.Col(attn, static_cast<int64_t>(c))));
  }
  ag::VarId user_social = tape.AddN(weighted);

  // Fuse with the interaction view (one bipartite propagation hop).
  ag::VarId user_final =
      tape.Add(user_social, tape.SpMM(&ui_norm_, &ui_norm_t_, h_item));
  ag::VarId item_final =
      tape.Add(h_item, tape.SpMM(&iu_norm_, &iu_norm_t_, user_social));

  ForwardResult out;
  out.users = user_final;
  out.items = item_final;

  // Self-supervised channel discrimination: each user's channel embedding
  // should score higher against the channel readout than a corrupted
  // (permuted) embedding does.
  if (training && config_.ssl_weight > 0.0f) {
    std::vector<int32_t> perm(static_cast<size_t>(num_users_));
    std::iota(perm.begin(), perm.end(), 0);
    shuffle_rng_.Shuffle(perm);
    std::vector<ag::VarId> ssl_terms;
    for (ag::VarId h : channel_out) {
      ag::VarId readout = tape.MeanRows(h);  // 1 x d graph summary
      ag::VarId pos = tape.MatMul(h, readout, false, true);       // U x 1
      ag::VarId corrupted = tape.GatherRows(h, perm);
      ag::VarId neg = tape.MatMul(corrupted, readout, false, true);
      ssl_terms.push_back(tape.BprLoss(pos, neg));
    }
    out.aux_loss =
        tape.ScalarMul(tape.AddN(ssl_terms),
                       config_.ssl_weight /
                           static_cast<float>(ssl_terms.size()));
  }
  return out;
}

}  // namespace dgnn::models
