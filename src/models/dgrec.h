// DGRec (Song et al., WSDM'19): session-based social recommendation with
// dynamic graph attention. Each user's short-term interest is a GRU over
// their most recent interactions (the synthetic data carries per-user
// interaction order, so sessions exist); friends' interests — short-term
// state plus long-term embedding — are combined by graph attention; a
// final projection fuses the user's own state with the social context.

#ifndef DGNN_MODELS_DGREC_H_
#define DGNN_MODELS_DGREC_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::models {

struct DgRecConfig {
  int64_t embedding_dim = 16;
  // Session length: number of most-recent interactions fed to the GRU.
  int session_length = 5;
  uint64_t seed = 42;
};

class DgRec : public RecModel {
 public:
  DgRec(const data::Dataset& dataset, const graph::HeteroGraph& graph,
        DgRecConfig config);

  const std::string& name() const override { return name_; }
  ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  int64_t embedding_dim() const override { return config_.embedding_dim; }

 private:
  // One GRU cell step with validity masking.
  ag::VarId GruStep(ag::Tape& tape, ag::VarId x, ag::VarId h,
                    ag::VarId mask) const;

  std::string name_ = "DGRec";
  DgRecConfig config_;
  int32_t num_users_;
  ag::ParamStore params_;
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  // GRU parameters.
  ag::Parameter* w_z_;
  ag::Parameter* u_z_;
  ag::Parameter* b_z_;
  ag::Parameter* w_r_;
  ag::Parameter* u_r_;
  ag::Parameter* b_r_;
  ag::Parameter* w_n_;
  ag::Parameter* u_n_;
  ag::Parameter* b_n_;
  // Social attention + fusion.
  ag::Parameter* att_w_;
  ag::Parameter* att_v_;
  ag::Parameter* fuse_w_;  // (2d x d)
  // Per-step item ids (index 0 = oldest) and validity masks.
  std::vector<std::vector<int32_t>> session_items_;
  std::vector<ag::Tensor> session_masks_;
  graph::EdgeList social_;
};

}  // namespace dgnn::models

#endif  // DGNN_MODELS_DGREC_H_
