#include "models/dgcf.h"

#include "util/strings.h"

namespace dgnn::models {

Dgcf::Dgcf(const graph::HeteroGraph& graph, DgcfConfig config)
    : config_(config),
      num_users_(graph.num_users()),
      num_items_(graph.num_items()) {
  DGNN_CHECK_EQ(config.embedding_dim % config.num_intents, 0)
      << "embedding_dim must divide evenly across intents";
  util::Rng rng(config.seed);
  const int64_t dk = config.embedding_dim / config.num_intents;
  for (int k = 0; k < config.num_intents; ++k) {
    user_chunks_.push_back(params_.CreateXavier(
        util::StrFormat("user_chunk_%d", k), graph.num_users(), dk, rng));
    item_chunks_.push_back(params_.CreateXavier(
        util::StrFormat("item_chunk_%d", k), graph.num_items(), dk, rng));
  }
  item_to_user_ = graph.ItemToUserEdges();
  inv_user_deg_ = ag::Tensor(graph.num_users(), 1);
  for (int64_t u = 0; u < graph.num_users(); ++u) {
    const int64_t deg = graph.user_item().RowDegree(u);
    inv_user_deg_.at(u, 0) = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
  }
  inv_item_deg_ = ag::Tensor(graph.num_items(), 1);
  for (int64_t i = 0; i < graph.num_items(); ++i) {
    const int64_t deg = graph.item_user().RowDegree(i);
    inv_item_deg_.at(i, 0) = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
  }
}

ForwardResult Dgcf::Forward(ag::Tape& tape, bool /*training*/) {
  const int K = config_.num_intents;
  std::vector<ag::VarId> u_k(static_cast<size_t>(K));
  std::vector<ag::VarId> i_k(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    u_k[static_cast<size_t>(k)] = tape.Param(user_chunks_[static_cast<size_t>(k)]);
    i_k[static_cast<size_t>(k)] = tape.Param(item_chunks_[static_cast<size_t>(k)]);
  }
  ag::VarId inv_udeg = tape.Constant(inv_user_deg_);
  ag::VarId inv_ideg = tape.Constant(inv_item_deg_);

  for (int layer = 0; layer < config_.num_layers; ++layer) {
    std::vector<ag::VarId> u_next = u_k;
    std::vector<ag::VarId> i_next = i_k;
    for (int iter = 0; iter < config_.routing_iterations; ++iter) {
      // Edge-intent affinity: score_ek = <norm u_k[dst], norm i_k[src]>.
      std::vector<ag::VarId> score_cols;
      score_cols.reserve(static_cast<size_t>(K));
      std::vector<ag::VarId> un(static_cast<size_t>(K)),
          in(static_cast<size_t>(K));
      for (int k = 0; k < K; ++k) {
        un[static_cast<size_t>(k)] =
            tape.RowL2Normalize(u_next[static_cast<size_t>(k)]);
        in[static_cast<size_t>(k)] =
            tape.RowL2Normalize(i_next[static_cast<size_t>(k)]);
        ag::VarId ue =
            tape.GatherRows(un[static_cast<size_t>(k)], item_to_user_.dst);
        ag::VarId ie =
            tape.GatherRows(in[static_cast<size_t>(k)], item_to_user_.src);
        score_cols.push_back(tape.RowDot(ue, ie));
      }
      // Softmax across intents per edge.
      ag::VarId attn = tape.RowSoftmax(tape.ConcatCols(score_cols));
      // Per-intent degree-normalized propagation in both directions.
      for (int k = 0; k < K; ++k) {
        ag::VarId w = tape.Col(attn, k);
        ag::VarId msg_to_user = tape.RowScale(
            tape.GatherRows(in[static_cast<size_t>(k)], item_to_user_.src),
            w);
        ag::VarId agg_u = tape.RowScale(
            tape.SegmentSum(msg_to_user, item_to_user_.dst, num_users_),
            inv_udeg);
        ag::VarId msg_to_item = tape.RowScale(
            tape.GatherRows(un[static_cast<size_t>(k)], item_to_user_.dst),
            w);
        ag::VarId agg_i = tape.RowScale(
            tape.SegmentSum(msg_to_item, item_to_user_.src, num_items_),
            inv_ideg);
        u_next[static_cast<size_t>(k)] =
            tape.Add(u_k[static_cast<size_t>(k)], agg_u);
        i_next[static_cast<size_t>(k)] =
            tape.Add(i_k[static_cast<size_t>(k)], agg_i);
      }
    }
    u_k = u_next;
    i_k = i_next;
  }

  ForwardResult out;
  out.users = tape.ConcatCols(u_k);
  out.items = tape.ConcatCols(i_k);
  return out;
}

}  // namespace dgnn::models
