#include "models/bpr_mf.h"

namespace dgnn::models {

BprMf::BprMf(const graph::HeteroGraph& graph, int64_t dim, uint64_t seed)
    : dim_(dim) {
  util::Rng rng(seed);
  user_emb_ = params_.CreateXavier("user_emb", graph.num_users(), dim, rng);
  item_emb_ = params_.CreateXavier("item_emb", graph.num_items(), dim, rng);
}

ForwardResult BprMf::Forward(ag::Tape& tape, bool /*training*/) {
  ForwardResult out;
  out.users = tape.Param(user_emb_);
  out.items = tape.Param(item_emb_);
  return out;
}

}  // namespace dgnn::models
